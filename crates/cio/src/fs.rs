//! The collective two-phase I/O model: a [`paragon_sim::IoService`].
//!
//! `Cio` keeps PFS's metadata semantics — opens, creates, closes, and
//! `lsize` serialize through one [`MetaServer`]; seeks on shared files
//! serialize at the file's metadata owner; `Sync` commits park until the
//! file drains — and replaces the *data path* with two-phase collective
//! transfers:
//!
//! * **gather** — a data operation on a shared file does not go to the
//!   I/O nodes; it parks in the file's gather bucket. When every current
//!   opener has contributed an operation in the same direction, the group
//!   forms a collective. Single-opener files degenerate to singleton
//!   collectives that dispatch immediately (no exchange, no extra cost).
//! * **phase 1: extent exchange** — the participants allgather 64-byte
//!   extent descriptors over the 2-D mesh (a log₂-stage broadcast tree),
//!   compute the conforming partition ([`crate::partition`]) of the
//!   aggregate request into stripe-aligned file domains, and shuffle member
//!   data to one elected aggregator per touched I/O node (cost: the
//!   longest member→aggregator mesh message). The whole phase is a real
//!   simulated delay, traced as an `I/O Wait` interval on the lead node.
//! * **phase 2: aggregated dispatch** — each aggregator issues *one large
//!   sequential transfer per file domain* through the shared
//!   [`SegmentPump`] under the buddy-failover policy, so retry, failover,
//!   crash, and timeout behavior is exactly the substrate's. When the last
//!   domain lands, every member completes with its own byte count and
//!   client copy cost; a typed [`IoFault`] on the collective propagates to
//!   every participant.
//!
//! Mode semantics under collectives: `M_UNIX`/`M_ASYNC` resolve per-node
//! pointers at issue time (the conforming partition supplies the atomicity
//! `M_UNIX` otherwise buys with a serialized RPC); `M_LOG` advances the
//! shared pointer at issue time (the exchange orders the group, replacing
//! pointer-token serialization); `M_RECORD` uses the record-interleaving
//! formula; `M_SYNC` assigns shared-pointer offsets in node-rank order at
//! collective formation; `M_GLOBAL` reads one shared offset for the whole
//! group.
//!
//! Contract: on a shared file, every opener participates in every
//! collective round between synchronization points (the shape of every
//! shipped workload). A `Close` shrinks the membership a collective waits
//! for, and a `Sync` force-flushes the file's write gather, so partial
//! groups cannot park a commit forever; a genuinely absent participant
//! surfaces as the engine's blocked-node report, not a silent hang.

use paragon_sim::calibration::FaultParams;
use paragon_sim::engine::{IoService, Sched};
use paragon_sim::fault::{FaultEvent, FaultKind, FaultSchedule};
use paragon_sim::ionode::{RejectReason, SegmentReq};
use paragon_sim::program::{IoFault, IoRequest, IoResult, IoToken, IoVerb};
use paragon_sim::{LinkQuality, LinkState, MachineConfig, NodeId, SimDuration, SimTime};
use sio_core::event::{IoEvent, IoOp};
use sio_core::hash::FastMap;
use sio_core::trace::{Trace, TraceSink};
use sio_fskit::file::{FileSpec, FileState};
use sio_fskit::mode::AccessMode;
use sio_fskit::pump::{backoff_delay, FailoverPolicy, NodeLoad, NodeTick, SegmentPump};
use sio_fskit::table::{MetaStats, MetaVerdict};
use sio_fskit::{
    FaultRouter, FileTable, MetaServer, SyncLedger, SyncWaiter, TimerLanes, TraceRecorder,
};

use crate::partition::{self, Domain, Extent};

pub use sio_fskit::client::ClientPath;
pub use sio_fskit::config::{FsConfig as CioConfig, DEFAULT_FILE_SLOT};

/// Assumed wire size of one extent descriptor in the phase-1 allgather.
const DESCRIPTOR_BYTES: u64 = 64;

/// How a gathered member's file offset is resolved at collective formation.
#[derive(Debug, Clone, Copy)]
enum OffsetSpec {
    /// Already resolved at issue time (M_UNIX, M_ASYNC, M_RECORD, M_LOG).
    At(u64),
    /// Shared pointer, assigned in node-rank order at formation (M_SYNC).
    Ordered,
    /// Shared pointer, one offset for the whole group (M_GLOBAL).
    Same,
}

/// One gathered (not yet dispatched) data operation.
#[derive(Debug, Clone, Copy)]
struct Member {
    token: IoToken,
    node: NodeId,
    issued: SimTime,
    is_async: bool,
    bytes: u64,
    spec: OffsetSpec,
}

/// A member with its offset resolved and its byte count clamped.
#[derive(Debug, Clone, Copy)]
struct RMember {
    token: IoToken,
    node: NodeId,
    issued: SimTime,
    is_async: bool,
    offset: u64,
    bytes: u64,
}

/// Per-file gather buckets, one per transfer direction (a collective is
/// same-direction by construction).
#[derive(Debug, Default)]
struct Bucket {
    writes: Vec<Member>,
    reads: Vec<Member>,
}

/// A formed collective waiting out its phase-1 exchange delay.
#[derive(Debug)]
struct PendingExchange {
    file: u32,
    write: bool,
    members: Vec<RMember>,
    domains: Vec<Domain>,
}

/// A dispatched collective: aggregated segments in flight.
#[derive(Debug)]
struct Collective {
    file: u32,
    write: bool,
    members: Vec<RMember>,
    segs_left: u32,
    seg_ids: Vec<u64>,
    /// First fault observed on any aggregated segment.
    fault: Option<IoFault>,
}

/// Collective-machinery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CioStats {
    /// Multi-member collective dispatches.
    pub collectives: u64,
    /// Single-member dispatches (solo opener: no exchange, no delay).
    pub singletons: u64,
    /// Member operations aggregated into multi-member collectives.
    pub members: u64,
    /// Aggregated per-I/O-node transfers issued (phase 2).
    pub aggregated_extents: u64,
    /// Summed phase-1 delay (descriptor allgather + data shuffle).
    pub exchange: SimDuration,
    /// Collectives force-flushed with partial membership (`Sync`/`Close`).
    pub flushed_partial: u64,
}

/// Counters for the fault-handling machinery (all zero on a healthy run);
/// the same shape as PFS's, since both ride the buddy-failover pump.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CioFaultStats {
    /// Segment re-submissions scheduled with backoff.
    pub retries: u64,
    /// Segments failed over to the buddy node.
    pub failovers: u64,
    /// Segments lost to node crashes (in service or queued).
    pub lost_segments: u64,
    /// Segments served from an array with exhausted redundancy.
    pub data_loss_segments: u64,
    /// Collectives failed by the hard deadline.
    pub timeouts: u64,
    /// Member requests failed because no server would accept them.
    pub unavailable: u64,
    /// Second-failure events that exhausted an array's redundancy.
    pub data_loss_events: u64,
}

/// A metadata RPC parked by a full metadata outage, awaiting a backoff
/// retry probe.
#[derive(Debug, Clone, Copy)]
struct ParkedMeta {
    token: IoToken,
    node: NodeId,
    file: u32,
    op: IoOp,
    cost: SimDuration,
    /// Result bytes on success (file length for `Lsize`, 0 otherwise).
    bytes: u64,
    issued: SimTime,
    /// Retry probes already made.
    attempt: u32,
}

/// The collective two-phase I/O model.
pub struct Cio {
    cfg: CioConfig,
    /// Segment pump over the I/O nodes (buddy-failover policy).
    pump: SegmentPump,
    files: FileTable,
    recorder: TraceRecorder,
    /// Global metadata server (replicated; buddy failover under faults).
    meta: MetaServer,
    /// Metadata RPCs parked by a full outage (timer id → parked RPC).
    parked_meta: FastMap<u64, ParkedMeta>,
    /// Interconnect link quality per I/O-node region (exchange-phase costs).
    links: LinkState,
    /// Per-file metadata-owner queues for shared-file seeks.
    seek_free: Vec<SimTime>,
    /// Per-file gather buckets.
    gather: FastMap<u32, Bucket>,
    /// Collectives waiting out their exchange delay (timer id → group).
    exchange: FastMap<u64, PendingExchange>,
    /// Dispatched collectives (collective id → state).
    collectives: FastMap<u64, Collective>,
    next_coll: u64,
    /// Timer-id lanes: per-I/O-node completion timers plus the dynamic
    /// lane (faults, retries, timeouts, exchanges).
    timers: TimerLanes,
    /// `Sync` commits parked until their file has no in-flight writes.
    syncs: SyncLedger,
    /// Per-node serial client copy path.
    client: ClientPath,
    /// Fault-handling calibration (backoff, failover, deadline).
    fault_params: FaultParams,
    /// Scheduled fault delivery; inert on a healthy run.
    faults: FaultRouter,
    /// Armed per-collective deadline timers (timer id → collective id).
    timeout_timers: FastMap<u64, u64>,
    fault_stats: CioFaultStats,
    stats: CioStats,
}

impl Cio {
    /// Build a CIO over the given machine, tracing into `sink`.
    pub fn new(machine: &MachineConfig, sink: TraceSink) -> Cio {
        Cio::with_faults(machine, sink, FaultSchedule::new())
    }

    /// Build a CIO with an injected fault schedule. An empty schedule is
    /// exactly [`Cio::new`]: no timers armed, bit-identical healthy runs.
    pub fn with_faults(machine: &MachineConfig, sink: TraceSink, schedule: FaultSchedule) -> Cio {
        let cfg = CioConfig::from_machine(machine);
        let ionodes = machine.build_io_nodes();
        let faults = FaultRouter::new(schedule, ionodes.len());
        let timers = TimerLanes::new(ionodes.len());
        let links = LinkState::healthy(ionodes.len());
        let pump = SegmentPump::new(
            ionodes,
            FailoverPolicy::Buddy {
                max_retries: machine.fault.max_retries,
            },
            machine.fault.retry_base,
        );
        let files = FileTable::new(cfg.file_slot, cfg.array_capacity);
        Cio {
            cfg,
            pump,
            files,
            recorder: TraceRecorder::new(sink),
            meta: MetaServer::new(),
            parked_meta: FastMap::default(),
            links,
            seek_free: Vec::new(),
            gather: FastMap::default(),
            exchange: FastMap::default(),
            collectives: FastMap::default(),
            next_coll: 0,
            timers,
            syncs: SyncLedger::new(),
            client: ClientPath::new(),
            fault_params: machine.fault,
            faults,
            timeout_timers: FastMap::default(),
            fault_stats: CioFaultStats::default(),
            stats: CioStats::default(),
        }
    }

    fn faults_enabled(&self) -> bool {
        self.faults.enabled()
    }

    /// Register a file; returns its id (used in [`IoRequest::file`]).
    pub fn register(&mut self, spec: FileSpec) -> u32 {
        let id = self.files.register(spec);
        self.seek_free.push(SimTime::ZERO);
        id
    }

    /// Register a file, returning [`IoFault::Unavailable`] when the
    /// fixed-slot allocator is exhausted.
    pub fn try_register(&mut self, spec: FileSpec) -> Result<u32, IoFault> {
        let id = self.files.try_register(spec)?;
        self.seek_free.push(SimTime::ZERO);
        Ok(id)
    }

    /// Current length of a registered file.
    pub fn file_len(&self, file: u32) -> u64 {
        self.files.len_of(file)
    }

    /// Mutable access to the trace sink (e.g. to set run metadata).
    pub fn sink_mut(&mut self) -> &mut TraceSink {
        self.recorder.sink_mut()
    }

    /// Consume the file system, freezing its captured trace.
    pub fn finish_trace(self) -> Trace {
        self.recorder.finish()
    }

    /// Collective-machinery counters.
    pub fn cio_stats(&self) -> CioStats {
        self.stats
    }

    /// Metadata fault-machinery counters (all zero on a healthy run).
    pub fn meta_stats(&self) -> MetaStats {
        self.meta.stats()
    }

    /// Fault-machinery counters (all zero on a healthy run).
    pub fn fault_stats(&self) -> CioFaultStats {
        let mut s = self.fault_stats;
        let p = self.pump.stats();
        s.retries += p.retries;
        s.failovers += p.failovers;
        s
    }

    /// Accepted-request accounting per I/O node.
    pub fn node_loads(&self) -> Vec<NodeLoad> {
        self.pump.node_loads()
    }

    /// Rebuild chunks completed across all I/O nodes.
    pub fn rebuild_chunks_total(&self) -> u64 {
        self.pump.rebuild_chunks_total()
    }

    /// Whether any accepted write was served by an array with exhausted
    /// redundancy (acknowledged data is gone).
    pub fn any_data_lost(&self) -> bool {
        self.pump.any_data_lost()
    }

    /// Submit a burst-log drain extent: a singleton asynchronous write
    /// collective dispatched straight through the phase-2 path, so drains
    /// inherit the conforming partition, pump staging, backoff/failover,
    /// and the hard deadline — but record no application-visible trace
    /// event (the member is `is_async`) and are not counted in the
    /// application-collective stats.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_drain(
        &mut self,
        node: NodeId,
        now: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        sched: &mut Sched,
    ) {
        self.state(file).extend_to(offset + bytes);
        if bytes == 0 {
            sched.complete_io(
                token,
                now,
                IoResult {
                    bytes: 0,
                    queued: SimDuration::ZERO,
                    service: SimDuration::ZERO,
                    fault: None,
                },
            );
            return;
        }
        let members = vec![RMember {
            token,
            node,
            issued: now,
            is_async: true,
            offset,
            bytes,
        }];
        let extents = [Extent { offset, bytes }];
        let domains = partition::partition(&self.cfg.layout, &extents);
        self.dispatch_collective(
            now,
            PendingExchange {
                file,
                write: true,
                members,
                domains,
            },
            sched,
        );
    }

    /// Member bytes rebuilt across all I/O nodes.
    pub fn rebuilt_bytes_total(&self) -> u64 {
        self.pump.rebuilt_bytes_total()
    }

    /// I/O nodes whose arrays are still degraded.
    pub fn degraded_nodes(&self) -> u32 {
        self.pump.degraded_nodes()
    }

    /// Sum of queueing delay accumulated across all I/O nodes.
    pub fn total_queueing(&self) -> SimDuration {
        self.pump.total_queueing()
    }

    /// Total stripe segments completed across all I/O nodes.
    pub fn segments_completed(&self) -> u64 {
        self.pump.segments_completed()
    }

    fn state(&mut self, file: u32) -> &mut FileState {
        self.files.state(file)
    }

    fn record(&mut self, ev: IoEvent) {
        self.recorder.record(ev);
    }

    /// Whether `file` still has in-flight write traffic a `Sync` must wait
    /// out: a gathered write member, a write collective in its exchange
    /// phase, or aggregated write segments on the I/O nodes.
    fn has_outstanding_writes(&self, file: u32) -> bool {
        self.collectives.values().any(|c| c.file == file && c.write)
            || self.exchange.values().any(|x| x.file == file && x.write)
            || self.gather.get(&file).is_some_and(|b| !b.writes.is_empty())
    }

    /// Acknowledge a commit (flush cost plus a typed `DataLoss` fault when
    /// redundancy is exhausted somewhere under the file).
    fn complete_sync(
        &mut self,
        token: IoToken,
        node: NodeId,
        file: u32,
        now: SimTime,
        issued: SimTime,
        sched: &mut Sched,
    ) {
        let fault = if self.pump.any_data_lost() {
            Some(IoFault::DataLoss)
        } else {
            None
        };
        self.recorder.complete_commit(
            sched,
            token,
            node,
            file,
            issued,
            now,
            self.cfg.io_sw.flush,
            fault,
        );
    }

    /// Release every `Sync` waiter on `file` once its last in-flight write
    /// has finished (or failed).
    fn drain_sync_waiters(&mut self, file: u32, now: SimTime, sched: &mut Sched) {
        if self.syncs.is_empty() || self.has_outstanding_writes(file) {
            return;
        }
        for w in self.syncs.take_for(file) {
            self.complete_sync(w.token, w.node, w.file, now, w.issued, sched);
        }
    }

    /// The trace/result op kind of a member.
    fn op_of(write: bool, is_async: bool) -> IoOp {
        match (write, is_async) {
            (true, _) => IoOp::Write,
            (false, false) => IoOp::Read,
            (false, true) => IoOp::AsyncRead,
        }
    }

    /// Complete one member with a zero-byte short software path (nothing
    /// to move: a zero-length write or a read at/past EOF).
    fn complete_empty_member(
        &mut self,
        file: u32,
        write: bool,
        m: RMember,
        now: SimTime,
        sched: &mut Sched,
    ) {
        let done = now + SimDuration::from_micros(200);
        let op = Cio::op_of(write, m.is_async);
        if !m.is_async {
            self.record(
                IoEvent::new(m.node, file, op)
                    .span(m.issued.nanos(), done.nanos())
                    .extent(m.offset, 0),
            );
        }
        sched.complete_io(
            m.token,
            done,
            IoResult {
                bytes: 0,
                queued: SimDuration::ZERO,
                service: done.since(m.issued),
                fault: None,
            },
        );
    }

    /// Fail every member of a collective with a typed fault.
    fn fail_collective(&mut self, cid: u64, fault: IoFault, now: SimTime, sched: &mut Sched) {
        let Some(c) = self.collectives.remove(&cid) else {
            return;
        };
        for id in &c.seg_ids {
            self.pump.forget(*id);
        }
        let op = Cio::op_of(c.write, false);
        for m in &c.members {
            if !m.is_async {
                self.record(
                    IoEvent::new(m.node, c.file, op)
                        .span(m.issued.nanos(), now.nanos())
                        .extent(m.offset, 0),
                );
            }
            sched.complete_io(
                m.token,
                now,
                IoResult {
                    bytes: 0,
                    queued: SimDuration::ZERO,
                    service: now.since(m.issued),
                    fault: Some(fault),
                },
            );
        }
        self.drain_sync_waiters(c.file, now, sched);
    }

    /// Complete a finished collective: every member pays its own client
    /// copy cost and reports its own byte count; a collective-level fault
    /// (redundancy-exhausted array) reaches every member.
    fn finish_collective(&mut self, c: Collective, now: SimTime, sched: &mut Sched) {
        let rate = self.cfg.io_sw.client_byte_rate;
        let op = Cio::op_of(c.write, false);
        for m in &c.members {
            let done = self.client.copy_done(m.node, now, m.bytes, rate);
            if !m.is_async {
                self.record(
                    IoEvent::new(m.node, c.file, op)
                        .span(m.issued.nanos(), done.nanos())
                        .extent(m.offset, m.bytes),
                );
            }
            sched.complete_io(
                m.token,
                done,
                IoResult {
                    bytes: m.bytes,
                    queued: SimDuration::ZERO,
                    service: done.since(m.issued),
                    fault: c.fault,
                },
            );
        }
        self.drain_sync_waiters(c.file, now, sched);
    }

    /// Push one aggregated segment through the pump; when both the primary
    /// and its buddy refuse it, fail the owning collective as unavailable.
    fn submit_or_fail(
        &mut self,
        now: SimTime,
        io: u32,
        req: SegmentReq,
        attempt: u32,
        sched: &mut Sched,
    ) {
        if let Some(cid) = self
            .pump
            .submit_seg(now, io, req, attempt, &mut self.timers, sched)
        {
            let members = self
                .collectives
                .get(&cid)
                .map_or(1, |c| c.members.len() as u64);
            self.fault_stats.unavailable += members;
            self.fail_collective(cid, IoFault::Unavailable, now, sched);
        }
    }

    /// Phase 2: issue one aggregated sequential transfer per file domain.
    fn dispatch_collective(&mut self, now: SimTime, x: PendingExchange, sched: &mut Sched) {
        let PendingExchange {
            file,
            write,
            members,
            domains,
        } = x;
        let slot_base = self.files.slot_base(file);
        if domains
            .iter()
            .any(|d| slot_base + d.local_offset + d.bytes > self.cfg.array_capacity)
        {
            // The aggregate overflows its allocator slot: a typed data-path
            // failure on every member, not a crash of the run.
            self.fault_stats.unavailable += members.len() as u64;
            let op = Cio::op_of(write, false);
            for m in &members {
                if !m.is_async {
                    self.record(
                        IoEvent::new(m.node, file, op)
                            .span(m.issued.nanos(), now.nanos())
                            .extent(m.offset, 0),
                    );
                }
                sched.complete_io(
                    m.token,
                    now,
                    IoResult {
                        bytes: 0,
                        queued: SimDuration::ZERO,
                        service: now.since(m.issued),
                        fault: Some(IoFault::Unavailable),
                    },
                );
            }
            self.drain_sync_waiters(file, now, sched);
            return;
        }
        let cid = self.next_coll;
        self.next_coll += 1;
        let mut reqs = Vec::with_capacity(domains.len());
        let mut seg_ids = Vec::with_capacity(domains.len());
        for d in &domains {
            let req = self
                .pump
                .stage_seg(slot_base + d.local_offset, d.bytes, write, cid);
            seg_ids.push(req.id);
            reqs.push((d.io_node, req));
        }
        self.stats.aggregated_extents += reqs.len() as u64;
        self.collectives.insert(
            cid,
            Collective {
                file,
                write,
                members,
                segs_left: reqs.len() as u32,
                seg_ids,
                fault: None,
            },
        );
        for (io, req) in reqs {
            self.submit_or_fail(now, io, req, 0, sched);
        }
        if self.faults_enabled() && self.collectives.contains_key(&cid) {
            // Hard deadline: no collective hangs forever under a fault
            // schedule with no recovery.
            let id = self.timers.alloc();
            self.timeout_timers.insert(id, cid);
            sched.timer(now + self.fault_params.request_timeout, id);
        }
    }

    /// Form a collective from gathered members: resolve offsets, clamp
    /// byte counts, compute the conforming partition, charge the phase-1
    /// exchange, and dispatch (immediately for singletons, after the
    /// exchange delay otherwise).
    fn form_collective(
        &mut self,
        file: u32,
        write: bool,
        members: Vec<Member>,
        forced: bool,
        now: SimTime,
        sched: &mut Sched,
    ) {
        // Distinct participating nodes, sorted: the aggregator electorate.
        let mut parts: Vec<NodeId> = members.iter().map(|m| m.node).collect();
        parts.sort_unstable();
        parts.dedup();
        let p = parts.len();
        if forced && p < self.files.get(file).opener_count() {
            self.stats.flushed_partial += 1;
        }

        // Resolve offsets. `Ordered` assigns the shared pointer in
        // node-rank order; `Same` advances it once for the whole group.
        let mut resolved: Vec<RMember> = Vec::with_capacity(members.len());
        match members[0].spec {
            OffsetSpec::At(_) => {
                for m in &members {
                    let OffsetSpec::At(offset) = m.spec else {
                        unreachable!("mixed offset specs in one bucket")
                    };
                    resolved.push(RMember {
                        token: m.token,
                        node: m.node,
                        issued: m.issued,
                        is_async: m.is_async,
                        offset,
                        bytes: m.bytes,
                    });
                }
            }
            OffsetSpec::Ordered => {
                let st = self.state(file);
                st.participants();
                let mut ordered = members.clone();
                let st = self.state(file);
                ordered.sort_by_key(|m| st.rank_of(m.node));
                for m in ordered {
                    let st = self.state(file);
                    let offset = st.shared_pos;
                    st.shared_pos += m.bytes;
                    resolved.push(RMember {
                        token: m.token,
                        node: m.node,
                        issued: m.issued,
                        is_async: m.is_async,
                        offset,
                        bytes: m.bytes,
                    });
                }
            }
            OffsetSpec::Same => {
                let bytes = members[0].bytes;
                debug_assert!(members.iter().all(|m| m.bytes == bytes));
                let st = self.state(file);
                let offset = st.shared_pos;
                st.shared_pos += bytes;
                for m in &members {
                    resolved.push(RMember {
                        token: m.token,
                        node: m.node,
                        issued: m.issued,
                        is_async: m.is_async,
                        offset,
                        bytes: m.bytes,
                    });
                }
            }
        }

        // Clamp: writes extend the file, reads clamp to EOF. Members left
        // with nothing to move complete on the short software path.
        let mut live: Vec<RMember> = Vec::with_capacity(resolved.len());
        for mut m in resolved {
            if write {
                self.state(file).extend_to(m.offset + m.bytes);
            } else {
                m.bytes = m
                    .bytes
                    .min(self.files.len_of(file).saturating_sub(m.offset));
            }
            if m.bytes == 0 {
                self.complete_empty_member(file, write, m, now, sched);
            } else {
                live.push(m);
            }
        }
        if live.is_empty() {
            self.drain_sync_waiters(file, now, sched);
            return;
        }

        // The conforming partition of the aggregate request.
        let extents: Vec<Extent> = live
            .iter()
            .map(|m| Extent {
                offset: m.offset,
                bytes: m.bytes,
            })
            .collect();
        let domains = partition::partition(&self.cfg.layout, &extents);

        if p <= 1 {
            // Solo opener: a singleton collective has nothing to exchange.
            self.stats.singletons += 1;
            self.dispatch_collective(
                now,
                PendingExchange {
                    file,
                    write,
                    members: live,
                    domains,
                },
                sched,
            );
            return;
        }

        // Phase 1: descriptor allgather over the mesh, then the data
        // shuffle — every member ships its overlap with each domain to
        // that domain's aggregator (writes) or receives it (reads); the
        // phase ends when the longest member↔aggregator message lands.
        // Descriptor allgather touches every region, so it pays the worst
        // link quality in force; a healthy link state is bit-identical to
        // the plain broadcast.
        let descriptors = self.cfg.mesh.broadcast_time_via(
            &self.cfg.comm,
            self.links.worst(),
            p as u32,
            DESCRIPTOR_BYTES * members.len() as u64,
        );
        let mut shuffle = SimDuration::ZERO;
        for d in &domains {
            let aggregator = parts[d.io_node as usize % p];
            for m in &live {
                if m.node == aggregator {
                    continue;
                }
                let ov = d.overlap(Extent {
                    offset: m.offset,
                    bytes: m.bytes,
                });
                if ov > 0 {
                    let hops = self.cfg.mesh.compute_hops(m.node, aggregator);
                    // The shuffle message lands in the domain's I/O-node
                    // region: it pays that region's link quality.
                    let q = self.links.region(d.io_node);
                    shuffle = shuffle.max(self.cfg.mesh.msg_time_via(&self.cfg.comm, q, hops, ov));
                }
            }
        }
        let exchange = descriptors + shuffle;
        let ready = now + exchange;
        self.stats.collectives += 1;
        self.stats.members += live.len() as u64;
        self.stats.exchange += exchange;

        // The exchange is a real interval on the mesh: trace it on the
        // lead (lowest-numbered) participant, spanning formation → ready,
        // with the aggregate extent.
        let union_lo = domains
            .iter()
            .flat_map(|d| d.pieces.first())
            .map(|e| e.offset)
            .min()
            .unwrap_or(0);
        let total: u64 = domains.iter().map(|d| d.bytes).sum();
        self.record(
            IoEvent::new(parts[0], file, IoOp::IoWait)
                .span(now.nanos(), ready.nanos())
                .extent(union_lo, total),
        );

        let pending = PendingExchange {
            file,
            write,
            members: live,
            domains,
        };
        if ready > now {
            let id = self.timers.alloc();
            self.exchange.insert(id, pending);
            sched.timer(ready, id);
        } else {
            self.dispatch_collective(now, pending, sched);
        }
    }

    /// Trigger check: when every current opener has contributed to the
    /// bucket (or `forced`), take it and form the collective.
    fn try_trigger(
        &mut self,
        file: u32,
        write: bool,
        forced: bool,
        now: SimTime,
        sched: &mut Sched,
    ) {
        let openers = self.files.get(file).opener_count();
        let Some(bucket) = self.gather.get_mut(&file) else {
            return;
        };
        let members = if write {
            &mut bucket.writes
        } else {
            &mut bucket.reads
        };
        if members.is_empty() {
            return;
        }
        if !forced {
            let mut nodes: Vec<NodeId> = members.iter().map(|m| m.node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            if nodes.len() < openers {
                return;
            }
        }
        let taken = std::mem::take(members);
        self.form_collective(file, write, taken, forced, now, sched);
    }

    /// Apply one scheduled fault event.
    fn apply_fault(&mut self, now: SimTime, ev: FaultEvent, sched: &mut Sched) {
        match ev.kind {
            FaultKind::DiskFail { disk } => {
                if self.pump.apply_disk_fail(ev.io_node, disk) {
                    self.fault_stats.data_loss_events += 1;
                }
            }
            FaultKind::DiskRepair => self.pump.apply_disk_repair(now, ev.io_node, sched),
            FaultKind::NodeStall { for_dur } => {
                self.pump.apply_stall(now, ev.io_node, for_dur, sched)
            }
            FaultKind::NodeCrash => {
                let lost = self.pump.crash(ev.io_node);
                self.fault_stats.lost_segments += lost.len() as u64;
                for req in lost {
                    if self.pump.owns(req.id) {
                        if let Some(cid) = self.pump.handle_rejection(
                            now,
                            ev.io_node,
                            req,
                            0,
                            RejectReason::Down,
                            &mut self.timers,
                            sched,
                        ) {
                            let members = self
                                .collectives
                                .get(&cid)
                                .map_or(1, |c| c.members.len() as u64);
                            self.fault_stats.unavailable += members;
                            self.fail_collective(cid, IoFault::Unavailable, now, sched);
                        }
                    }
                }
            }
            FaultKind::NodeRecover => self.pump.recover(now, ev.io_node, sched),
            FaultKind::LinkDegrade { bw_div, lat_mult } => {
                // Data-path segments into the region's I/O node stretch by
                // the bandwidth divisor; the exchange phase consults the
                // region's quality through the link state.
                self.pump.apply_link_degrade(ev.io_node, bw_div);
                self.links
                    .degrade(ev.io_node, LinkQuality { bw_div, lat_mult });
            }
            FaultKind::LinkHeal => {
                self.pump.apply_link_heal(ev.io_node);
                self.links.heal(ev.io_node);
            }
            FaultKind::MetaStall { for_dur } => self.meta.stall(now, ev.io_node, for_dur),
            FaultKind::MetaCrash => self.meta.crash(ev.io_node),
            FaultKind::MetaRecover => self.meta.recover(ev.io_node),
        }
    }

    /// Serve a metadata RPC through the replicated server, parking it with
    /// bounded backoff retries when both replicas are down. A healthy run
    /// never parks, so this is bit-identical to the historical direct path.
    #[allow(clippy::too_many_arguments)]
    fn meta_op(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        file: u32,
        op: IoOp,
        cost: SimDuration,
        bytes: u64,
        sched: &mut Sched,
    ) {
        match self.meta.try_op(now, cost) {
            MetaVerdict::Done(done) => {
                self.recorder
                    .complete_op(sched, token, node, file, op, now, done, None, bytes);
            }
            MetaVerdict::Outage => {
                let parked = ParkedMeta {
                    token,
                    node,
                    file,
                    op,
                    cost,
                    bytes,
                    issued: now,
                    attempt: 0,
                };
                self.park_meta(now, parked, sched);
            }
        }
    }

    /// Arm one backoff retry probe for a parked metadata RPC.
    fn park_meta(&mut self, now: SimTime, parked: ParkedMeta, sched: &mut Sched) {
        self.meta.note_retry();
        let id = self.timers.alloc();
        self.parked_meta.insert(id, parked);
        sched.timer(
            now + backoff_delay(self.fault_params.retry_base, parked.attempt),
            id,
        );
    }

    /// A parked metadata RPC's retry timer fired: re-probe the replicas,
    /// park again while the retry budget lasts, then surface the outage as
    /// a typed [`IoFault::Unavailable`] — never hang.
    fn retry_meta(&mut self, now: SimTime, mut parked: ParkedMeta, sched: &mut Sched) {
        match self.meta.try_op(now, parked.cost) {
            MetaVerdict::Done(done) => {
                self.recorder.complete_op(
                    sched,
                    parked.token,
                    parked.node,
                    parked.file,
                    parked.op,
                    parked.issued,
                    done,
                    None,
                    parked.bytes,
                );
            }
            MetaVerdict::Outage => {
                if parked.attempt < self.fault_params.max_retries {
                    parked.attempt += 1;
                    self.park_meta(now, parked, sched);
                } else {
                    self.meta.note_unavailable();
                    self.fault_stats.unavailable += 1;
                    self.recorder.fail_op(
                        sched,
                        parked.token,
                        parked.node,
                        parked.file,
                        parked.op,
                        parked.issued,
                        now,
                        IoFault::Unavailable,
                    );
                }
            }
        }
    }

    /// Gather a data operation according to the file's mode, then check
    /// the collective trigger.
    #[allow(clippy::too_many_arguments)]
    fn data_op(
        &mut self,
        now: SimTime,
        token: IoToken,
        node: NodeId,
        req: IoRequest,
        write: bool,
        is_async: bool,
        sched: &mut Sched,
    ) {
        let file = req.file;
        let mode = self.files.get(file).mode.unwrap_or_else(|| {
            panic!(
                "data op on closed file {} by node {node}",
                self.files.get(file).spec.name
            )
        });
        let spec = match mode {
            AccessMode::MUnix | AccessMode::MAsync => {
                let st = self.state(file);
                let pos = st.pos.entry(node).or_insert(0);
                let offset = req.offset.unwrap_or(*pos);
                *pos = offset + req.bytes;
                // No atomic-write RPC: the conforming partition itself
                // guarantees M_UNIX's non-interleaving of concurrent
                // writers.
                OffsetSpec::At(offset)
            }
            AccessMode::MRecord => {
                let st = self.state(file);
                let rs = *st.record_size.get_or_insert(req.bytes);
                assert_eq!(
                    req.bytes, rs,
                    "M_RECORD requires fixed-size records ({rs} B) on {}",
                    st.spec.name
                );
                let n = st.participants().len() as u64;
                let rank = st.rank_of(node);
                let k = st.op_count.entry(node).or_insert(0);
                let record_index = *k * n + rank;
                *k += 1;
                OffsetSpec::At(record_index * rs)
            }
            AccessMode::MLog => {
                // The exchange orders the group; the shared pointer
                // advances in arrival order with no token serialization.
                let st = self.state(file);
                let offset = st.shared_pos;
                st.shared_pos += req.bytes;
                OffsetSpec::At(offset)
            }
            AccessMode::MSync => OffsetSpec::Ordered,
            AccessMode::MGlobal => OffsetSpec::Same,
        };
        // Trace the async issue itself, with the offset the request
        // resolved to (shared-pointer specs resolve at formation; the
        // issue event reports the current shared position).
        if is_async {
            let resolved = match spec {
                OffsetSpec::At(o) => o,
                OffsetSpec::Ordered | OffsetSpec::Same => self.files.get(file).shared_pos,
            };
            let issue_end = now + self.cfg.io_sw.async_issue;
            self.record(
                IoEvent::new(node, file, IoOp::AsyncRead)
                    .span(now.nanos(), issue_end.nanos())
                    .extent(resolved, req.bytes),
            );
        }
        let bucket = self.gather.entry(file).or_default();
        let members = if write {
            &mut bucket.writes
        } else {
            &mut bucket.reads
        };
        members.push(Member {
            token,
            node,
            issued: now,
            is_async,
            bytes: req.bytes,
            spec,
        });
        self.try_trigger(file, write, false, now, sched);
    }
}

impl IoService for Cio {
    fn submit(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    ) {
        match req.verb {
            IoVerb::Open => {
                let mode = AccessMode::from_code(req.hint)
                    .unwrap_or_else(|| panic!("bad access-mode code {}", req.hint));
                let create = self.state(req.file).open(node, mode);
                let cost = if create {
                    self.cfg.io_sw.create
                } else {
                    self.cfg.io_sw.open
                };
                self.meta_op(now, token, node, req.file, IoOp::Open, cost, 0, sched);
            }
            IoVerb::Close => {
                self.state(req.file).close(node);
                // The membership a collective waits for just shrank: a
                // bucket the remaining openers have all contributed to can
                // now go.
                self.try_trigger(req.file, true, false, now, sched);
                self.try_trigger(req.file, false, false, now, sched);
                let cost = self.cfg.io_sw.close;
                self.meta_op(now, token, node, req.file, IoOp::Close, cost, 0, sched);
            }
            IoVerb::Seek => {
                let target = req.offset.expect("seek needs an offset");
                let shared = self.state(req.file).opener_count() > 1;
                let (done, distance) = if shared {
                    // Serialized at the file's metadata owner (PFS
                    // semantics: collective I/O does not change the
                    // metadata path).
                    let cost = self.cfg.io_sw.seek_shared_rpc;
                    let free = &mut self.seek_free[req.file as usize];
                    let start = (*free).max(now);
                    let done = start + cost;
                    *free = done;
                    let st = self.state(req.file);
                    let pos = st.pos.entry(node).or_insert(0);
                    let distance = pos.abs_diff(target);
                    *pos = target;
                    (done, distance)
                } else {
                    let st = self.state(req.file);
                    let pos = st.pos.entry(node).or_insert(0);
                    let distance = pos.abs_diff(target);
                    *pos = target;
                    (now + self.cfg.io_sw.seek_local, distance)
                };
                self.recorder.complete_op(
                    sched,
                    token,
                    node,
                    req.file,
                    IoOp::Seek,
                    now,
                    done,
                    Some((target, distance)),
                    0,
                );
            }
            IoVerb::Flush => {
                let done = now + self.cfg.io_sw.flush;
                self.recorder.complete_op(
                    sched,
                    token,
                    node,
                    req.file,
                    IoOp::Flush,
                    now,
                    done,
                    None,
                    0,
                );
            }
            IoVerb::Lsize => {
                let cost = self.cfg.io_sw.lsize;
                let len = self.file_len(req.file);
                self.meta_op(now, token, node, req.file, IoOp::Lsize, cost, len, sched);
            }
            IoVerb::Sync => {
                // A commit must not park behind members that will never
                // trigger: force-flush the file's write gather first, then
                // wait out whatever is actually in flight.
                self.try_trigger(req.file, true, true, now, sched);
                if self.has_outstanding_writes(req.file) {
                    self.syncs.park(SyncWaiter {
                        token,
                        node,
                        file: req.file,
                        issued: now,
                    });
                } else {
                    self.complete_sync(token, node, req.file, now, now, sched);
                }
            }
            IoVerb::Read => self.data_op(now, token, node, req, false, is_async, sched),
            IoVerb::Write => self.data_op(now, token, node, req, true, is_async, sched),
        }
    }

    fn on_start(&mut self, sched: &mut Sched) {
        self.faults.arm_all(&mut self.timers, sched);
    }

    fn on_timer(&mut self, now: SimTime, timer: u64, sched: &mut Sched) {
        if self.timers.is_node_timer(timer) {
            match self.pump.node_tick(now, timer, sched) {
                NodeTick::Stale => debug_assert!(
                    self.faults_enabled(),
                    "stale i/o-node timer on a healthy run"
                ),
                NodeTick::Rebuild => {}
                NodeTick::Orphan => {
                    debug_assert!(self.faults_enabled(), "segment with no owner")
                }
                NodeTick::Seg {
                    owner: cid,
                    data_lost,
                } => {
                    let Some(c) = self.collectives.get_mut(&cid) else {
                        debug_assert!(self.faults_enabled(), "collective missing");
                        return;
                    };
                    if data_lost {
                        self.fault_stats.data_loss_segments += 1;
                        c.fault = Some(IoFault::DataLoss);
                    }
                    c.segs_left -= 1;
                    if c.segs_left == 0 {
                        let Some(c) = self.collectives.remove(&cid) else {
                            debug_assert!(false, "collective vanished: {cid}");
                            return;
                        };
                        self.finish_collective(c, now, sched);
                    }
                }
            }
        } else if let Some(ev) = self.faults.take(timer) {
            self.apply_fault(now, ev, sched);
        } else if let Some(r) = self.pump.take_retry(timer) {
            // Retry only while the owning collective is still alive.
            if self.pump.owns(r.req.id) {
                self.submit_or_fail(now, r.io, r.req, r.attempt, sched);
            }
        } else if let Some(cid) = self.timeout_timers.remove(&timer) {
            if self.collectives.contains_key(&cid) {
                self.fault_stats.timeouts += 1;
                self.fail_collective(cid, IoFault::Timeout, now, sched);
            }
        } else if let Some(parked) = self.parked_meta.remove(&timer) {
            self.retry_meta(now, parked, sched);
        } else {
            // Phase-1 exchange complete: dispatch the collective.
            let x = self.exchange.remove(&timer).expect("unknown timer");
            self.dispatch_collective(now, x, sched);
        }
    }

    fn issue_cost(&self, _node: NodeId, _req: &IoRequest) -> SimDuration {
        self.cfg.io_sw.async_issue
    }

    fn on_iowait(&mut self, node: NodeId, file: u32, wait_start: SimTime, wait_end: SimTime) {
        self.recorder.iowait(node, file, wait_start, wait_end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paragon_sim::mesh::Mesh;
    use paragon_sim::program::{NodeProgram, ScriptOp, ScriptProgram};
    use paragon_sim::Engine;
    use sio_core::trace::Trace;

    fn run_engine(
        machine: &MachineConfig,
        files: Vec<FileSpec>,
        scripts: Vec<Vec<ScriptOp>>,
    ) -> (Engine<Cio>, paragon_sim::EngineReport) {
        let mut cio = Cio::new(machine, TraceSink::new("test"));
        for f in files {
            cio.register(f);
        }
        let programs: Vec<Box<dyn NodeProgram>> = scripts
            .into_iter()
            .map(|s| Box::new(ScriptProgram::new(s)) as Box<dyn NodeProgram>)
            .collect();
        let mesh = Mesh::for_nodes(machine.compute_nodes, machine.io_nodes);
        let mut engine = Engine::new(mesh, machine.comm, programs, cio);
        engine.set_default_watchdog();
        let report = engine.run();
        assert!(report.clean(), "blocked nodes: {:?}", report.blocked);
        (engine, report)
    }

    fn run_scripts(
        machine: &MachineConfig,
        files: Vec<FileSpec>,
        scripts: Vec<Vec<ScriptOp>>,
    ) -> (Trace, paragon_sim::EngineReport) {
        let (engine, report) = run_engine(machine, files, scripts);
        let mut cio = engine.into_service();
        cio.sink_mut()
            .set_run_info(machine.compute_nodes, report.wall.nanos());
        (cio.finish_trace(), report)
    }

    fn machine() -> MachineConfig {
        MachineConfig::tiny(4, 2)
    }

    fn open(file: u32, mode: AccessMode) -> ScriptOp {
        ScriptOp::Io(IoRequest::open(file, mode.code()))
    }

    #[test]
    fn solo_roundtrip_is_all_singletons() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::write(0, 100_000)),
            ScriptOp::Io(IoRequest::seek(0, 0)),
            ScriptOp::Io(IoRequest::read(0, 100_000)),
            ScriptOp::Io(IoRequest::close(0)),
        ];
        let (engine, report) = run_engine(&machine(), vec![FileSpec::output("f")], vec![script]);
        let stats = engine.service().cio_stats();
        assert_eq!(stats.singletons, 2);
        assert_eq!(stats.collectives, 0);
        assert_eq!(stats.exchange, SimDuration::ZERO);
        let trace = engine.into_service().finish_trace();
        assert_eq!(trace.of_op(IoOp::Write).count(), 1);
        assert_eq!(trace.of_op(IoOp::Read).next().unwrap().bytes, 100_000);
        // Solo collectives have nothing to exchange: no I/O-wait interval.
        assert_eq!(trace.of_op(IoOp::IoWait).count(), 0);
        assert!(report.wall > SimTime::ZERO);
    }

    #[test]
    fn interleaved_writers_aggregate_to_one_transfer_per_io_node() {
        // 4 nodes write 32 KB each at interleaved offsets covering
        // [0, 128 KB): two 64 KB stripe units, one per I/O node. The
        // collective must move the whole region as ONE aggregated
        // sequential transfer per I/O node.
        let mk = |node: u64| {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::seek(0, node * 32 * 1024)),
                ScriptOp::Io(IoRequest::write(0, 32 * 1024)),
            ]
        };
        let (engine, _) = run_engine(
            &machine(),
            vec![FileSpec::output("stage")],
            (0..4).map(mk).collect(),
        );
        let stats = engine.service().cio_stats();
        assert_eq!(stats.collectives, 1);
        assert_eq!(stats.members, 4);
        assert_eq!(stats.aggregated_extents, 2);
        assert!(stats.exchange > SimDuration::ZERO);
        assert_eq!(engine.service().segments_completed(), 2);
        let loads = engine.service().node_loads();
        assert_eq!(loads.len(), 2);
        for l in &loads {
            assert_eq!(l.write_reqs, 1, "one aggregated request per node");
            assert_eq!(l.write_bytes, 64 * 1024);
        }
        let trace = engine.into_service().finish_trace();
        // Every member still sees its own 32 KB write at its own offset.
        let mut writes: Vec<(u64, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.offset, e.bytes))
            .collect();
        writes.sort_unstable();
        let expect: Vec<(u64, u64)> = (0..4u64).map(|n| (n * 32 * 1024, 32 * 1024)).collect();
        assert_eq!(writes, expect);
        // All members complete at the same instant (same aggregate, same
        // client copy size).
        let ends: Vec<u64> = trace.of_op(IoOp::Write).map(|e| e.end).collect();
        assert!(ends.iter().all(|&e| e == ends[0]), "{ends:?}");
    }

    #[test]
    fn exchange_is_traced_as_iowait_on_the_lead_node() {
        let mk = |node: u64| {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::seek(0, node * 8192)),
                ScriptOp::Io(IoRequest::write(0, 8192)),
            ]
        };
        let (engine, _) = run_engine(
            &machine(),
            vec![FileSpec::output("x")],
            (0..4).map(mk).collect(),
        );
        let exchange = engine.service().cio_stats().exchange;
        let trace = engine.into_service().finish_trace();
        let waits: Vec<_> = trace.of_op(IoOp::IoWait).collect();
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].node, 0, "exchange traced on the lead member");
        assert_eq!(waits[0].duration(), exchange.nanos());
        assert_eq!(waits[0].bytes, 4 * 8192, "aggregate extent");
    }

    #[test]
    fn close_shrinks_the_membership_a_collective_waits_for() {
        // Node 1's write gathers while node 0 still has the file open;
        // node 0's close must release it as a singleton.
        let s0 = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Compute(SimDuration::from_millis(10)),
            ScriptOp::Io(IoRequest::close(0)),
        ];
        let s1 = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::write(0, 1000)),
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![s0, s1]);
        let wr = trace.of_op(IoOp::Write).next().unwrap();
        assert_eq!((wr.node, wr.bytes), (1, 1000));
        assert!(
            wr.duration() >= SimDuration::from_millis(10).nanos(),
            "write must have waited for the close: {}",
            wr.duration()
        );
    }

    #[test]
    fn sync_force_flushes_a_partial_write_gather() {
        // Node 0 syncs while its async write sits in a gather the second
        // opener will never contribute to; the commit must not park
        // forever.
        let s0 = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::IoAsync(IoRequest::write(0, 4096)),
            ScriptOp::Io(IoRequest::sync(0)),
            ScriptOp::WaitOldest,
            ScriptOp::Io(IoRequest::close(0)),
        ];
        let s1 = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Compute(SimDuration::from_millis(50)),
            ScriptOp::Io(IoRequest::close(0)),
        ];
        let (engine, _) = run_engine(&machine(), vec![FileSpec::output("f")], vec![s0, s1]);
        assert_eq!(engine.service().cio_stats().flushed_partial, 1);
        assert_eq!(engine.service().file_len(0), 4096);
        let trace = engine.into_service().finish_trace();
        // The commit interval is traced and spans the flushed write.
        assert_eq!(trace.of_op(IoOp::Flush).count(), 1);
    }

    #[test]
    fn reads_clamp_to_eof() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::Io(IoRequest::write(0, 500)),
            ScriptOp::Io(IoRequest::seek(0, 0)),
            ScriptOp::Io(IoRequest::read(0, 10_000)),
            ScriptOp::Io(IoRequest::read(0, 10_000)), // past EOF: 0 bytes
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        let sizes: Vec<u64> = trace.of_op(IoOp::Read).map(|e| e.bytes).collect();
        assert_eq!(sizes, vec![500, 0]);
    }

    #[test]
    fn mrecord_interleaves_records_in_node_order() {
        let mk = |_node: u32| {
            vec![
                open(0, AccessMode::MRecord),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::write(0, 2048)),
                ScriptOp::Io(IoRequest::write(0, 2048)),
            ]
        };
        let (trace, _) = run_scripts(
            &MachineConfig::tiny(3, 2),
            vec![FileSpec::output("rec")],
            vec![mk(0), mk(1), mk(2)],
        );
        let mut offs: Vec<(u32, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.node, e.offset))
            .collect();
        offs.sort_unstable();
        assert_eq!(
            offs,
            vec![
                (0, 0),
                (0, 3 * 2048),
                (1, 2048),
                (1, 4 * 2048),
                (2, 2 * 2048),
                (2, 5 * 2048)
            ]
        );
    }

    #[test]
    fn mlog_shared_pointer_packs_variable_records() {
        let mk = |bytes: u64| {
            vec![
                open(0, AccessMode::MLog),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::write(0, bytes)),
            ]
        };
        let (trace, _) = run_scripts(
            &MachineConfig::tiny(3, 2),
            vec![FileSpec::output("log")],
            vec![mk(100), mk(200), mk(300)],
        );
        let mut extents: Vec<(u64, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.offset, e.bytes))
            .collect();
        extents.sort_unstable();
        let mut expect_off = 0;
        for (off, bytes) in extents {
            assert_eq!(off, expect_off);
            expect_off += bytes;
        }
        assert_eq!(expect_off, 600);
    }

    #[test]
    fn msync_assigns_shared_pointer_in_node_order() {
        // Node 2 issues first; offsets must still come out in rank order.
        let mk = |node: u32| {
            let delay = SimDuration::from_millis(10 * (2 - node) as u64);
            vec![
                open(0, AccessMode::MSync),
                ScriptOp::Barrier(0),
                ScriptOp::Compute(delay),
                ScriptOp::Io(IoRequest::write(0, 1000)),
            ]
        };
        let (trace, _) = run_scripts(
            &MachineConfig::tiny(3, 2),
            vec![FileSpec::output("sync")],
            vec![mk(0), mk(1), mk(2)],
        );
        let mut by_node: Vec<(u32, u64)> = trace
            .of_op(IoOp::Write)
            .map(|e| (e.node, e.offset))
            .collect();
        by_node.sort_unstable();
        assert_eq!(by_node, vec![(0, 0), (1, 1000), (2, 2000)]);
    }

    #[test]
    fn mglobal_coalesces_into_one_physical_read() {
        let mk = || {
            vec![
                open(0, AccessMode::MGlobal),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::read(0, 8192)),
                ScriptOp::Io(IoRequest::read(0, 8192)),
            ]
        };
        let (engine, _) = run_engine(
            &machine(),
            vec![FileSpec::input("shared", 1 << 20)],
            (0..4).map(|_| mk()).collect(),
        );
        let segments = engine.service().segments_completed();
        let trace = engine.into_service().finish_trace();
        assert_eq!(trace.of_op(IoOp::Read).count(), 8);
        let mut offs: Vec<u64> = trace.of_op(IoOp::Read).map(|e| e.offset).collect();
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs, vec![0, 8192]);
        // One aggregated segment per coalesced read.
        assert_eq!(segments, 2);
    }

    #[test]
    fn shared_seeks_still_serialize_at_the_metadata_owner() {
        let mk = |node: u32| {
            vec![
                open(0, AccessMode::MUnix),
                ScriptOp::Barrier(0),
                ScriptOp::Io(IoRequest::seek(0, node as u64 * 4096)),
            ]
        };
        let (trace, _) = run_scripts(
            &machine(),
            vec![FileSpec::output("shared")],
            vec![mk(0), mk(1)],
        );
        let mut durations: Vec<u64> = trace.of_op(IoOp::Seek).map(|e| e.duration()).collect();
        durations.sort_unstable();
        let rpc = machine().io_sw.seek_shared_rpc.nanos();
        assert!(durations[0] >= rpc);
        assert!(
            durations[1] >= 2 * rpc,
            "second seek must queue: {durations:?}"
        );
    }

    #[test]
    fn async_read_traces_issue_and_iowait() {
        let script = vec![
            open(0, AccessMode::MUnix),
            ScriptOp::IoAsync(IoRequest::read(0, 1 << 20)),
            ScriptOp::WaitOldest,
            ScriptOp::Io(IoRequest::close(0)),
        ];
        let (trace, _) = run_scripts(
            &machine(),
            vec![FileSpec::input("data", 4 << 20)],
            vec![script],
        );
        assert_eq!(trace.of_op(IoOp::AsyncRead).count(), 1);
        assert_eq!(trace.of_op(IoOp::IoWait).count(), 1);
        assert_eq!(trace.of_op(IoOp::Read).count(), 0);
        let issue = trace.of_op(IoOp::AsyncRead).next().unwrap().duration();
        let wait = trace.of_op(IoOp::IoWait).next().unwrap().duration();
        assert!(issue < wait, "issue {issue} !< wait {wait}");
    }

    #[test]
    fn metadata_verbs_match_pfs_semantics() {
        let script = vec![
            open(0, AccessMode::MUnix), // create
            ScriptOp::Io(IoRequest::write(0, 100)),
            ScriptOp::Io(IoRequest::flush(0)),
            ScriptOp::Io(IoRequest::lsize(0)),
            ScriptOp::Io(IoRequest::close(0)),
            open(0, AccessMode::MUnix), // plain open
        ];
        let (trace, _) = run_scripts(&machine(), vec![FileSpec::output("f")], vec![script]);
        assert_eq!(trace.of_op(IoOp::Flush).count(), 1);
        assert_eq!(trace.of_op(IoOp::Lsize).count(), 1);
        let opens: Vec<u64> = trace.of_op(IoOp::Open).map(|e| e.duration()).collect();
        assert!(
            opens[0] > opens[1],
            "create {} !> open {}",
            opens[0],
            opens[1]
        );
    }
}

//! The discrete-event burst-log tier: [`Blog`] wraps any [`DrainBackend`]
//! and absorbs independent-pointer writes into a per-compute-node append
//! log simulated at [`LogDeviceParams`] speed, acknowledging them as soon
//! as the frame is on local durable media. A per-node drainer coalesces
//! contiguous records into large extents and pushes them into the wrapped
//! backend through its ordinary fault-tolerant write path
//! ([`DrainBackend::submit_drain`]), overlapping application compute.
//!
//! ## Contracts preserved for the wrapped backend
//!
//! * **Trace shape.** Absorbed blocking writes trace one `Write` event
//!   spanning submit → log-commit with their exact extent; absorbed async
//!   writes trace the issue interval (`AsyncRead`, the direct backends'
//!   convention). Metadata verbs (`Open`/`Close`/`Seek`/`Flush`/`Lsize`)
//!   forward verbatim and are traced exactly once by the inner backend.
//!   Drain traffic is deliberately invisible in the application trace — it
//!   shows up only in the inner pump's per-I/O-node accounting.
//! * **Sync durability.** `Sync` acknowledges once every acknowledged
//!   write of the file is on durable media (log or array): it waits out
//!   appends parked on a full log, then completes at the local flush cost,
//!   tracing exactly one `Flush` with nonzero duration. A drain fault or
//!   inner data loss surfaces as a typed [`IoFault`] on the next `Sync` —
//!   a commit must not claim durability the tier cannot deliver.
//! * **Read-your-writes.** Reads and `Lsize` on a file with undrained
//!   records park until the drainer catches up, then forward with a
//!   resolved offset, so the inner backend always serves fully-drained
//!   data.
//!
//! Shared-pointer and fixed-record modes (`M_LOG`/`M_SYNC`/`M_GLOBAL`/
//! `M_RECORD`) bypass the log entirely: their offset resolution is
//! coordination state owned by the inner backend, and splitting it across
//! tiers would change semantics. Writes larger than the whole log also
//! bypass it (a burst buffer smaller than one write is a misconfiguration,
//! not a deadlock).

use paragon_sim::calibration::{log_device_params, LogDeviceParams};
use paragon_sim::engine::{IoService, Sched};
use paragon_sim::program::{IoFault, IoRequest, IoResult, IoToken, IoVerb};
use paragon_sim::time::transfer_time;
use paragon_sim::{NodeId, SimDuration, SimTime};
use sio_core::event::{IoEvent, IoOp};
use sio_core::hash::FastMap;
use sio_core::trace::TraceSink;
use sio_fskit::mode::AccessMode;
use std::collections::VecDeque;

/// First token value the drainer uses for its synthetic inner-backend
/// writes. Engine tokens count up from 1; the tiers meet only if a run
/// issues 2^62 operations.
pub const DRAIN_TOKEN_BASE: IoToken = 1 << 62;

/// Tag bit marking a timer id as belonging to the blog tier (inner-backend
/// timer ids are small counters and forward verbatim).
const BLOG_TIMER_BIT: u64 = 1 << 62;

/// A backend that can accept coalesced drain extents from the log tier.
///
/// `submit_drain` must eventually complete `token` through the given
/// [`Sched`] exactly like a write submitted by a node — including typed
/// faults, retries, failover, and crash replay — but without tracing an
/// application-visible event (drain traffic is host-side background I/O).
pub trait DrainBackend: IoService {
    /// Submit one coalesced extent (`offset..offset+bytes` of `file`) as a
    /// background write on behalf of `node`.
    #[allow(clippy::too_many_arguments)]
    fn submit_drain(
        &mut self,
        node: NodeId,
        now: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        sched: &mut Sched,
    );

    /// The trace sink application-visible events are recorded into (the
    /// log tier traces its absorbed writes here so the run yields one
    /// merged trace).
    fn drain_sink(&mut self) -> &mut TraceSink;

    /// Whether any write the backend accepted was lost to exhausted
    /// redundancy (surfaced as `DataLoss` on the next `Sync`).
    fn any_data_lost(&self) -> bool;
}

/// Tunables of the log tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlogParams {
    /// Per-node log capacity in bytes (payload + framing). Appends that
    /// would overflow park until the drainer frees space.
    pub log_bytes: u64,
    /// Drain read-back bandwidth from the log device, bytes/second (the
    /// knob the X7 sweep turns).
    pub drain_rate: f64,
    /// Largest coalesced extent one drain transfer carries.
    pub drain_chunk: u64,
    /// Append-side device timing.
    pub device: LogDeviceParams,
}

impl BlogParams {
    /// Parameters from the repro-CLI units: log capacity in MB, drain
    /// bandwidth in MB/s.
    pub fn new(log_mb: u64, drain_mbps: f64) -> BlogParams {
        BlogParams {
            log_bytes: log_mb << 20,
            drain_rate: drain_mbps * 1.0e6,
            drain_chunk: 1 << 20,
            device: log_device_params(),
        }
    }
}

impl Default for BlogParams {
    fn default() -> Self {
        BlogParams::new(64, 8.0)
    }
}

/// Drain-health counters harvested after a run (crashed runs freeze them
/// at the kill instant — `pending_bytes` is the crash exposure the
/// recovery replay must re-drain).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlogStats {
    /// Payload bytes acknowledged into the log.
    pub appended_bytes: u64,
    /// Payload bytes whose drain transfer completed cleanly.
    pub drained_bytes: u64,
    /// Framed bytes still occupying the logs (undrained) at harvest.
    pub pending_bytes: u64,
    /// Records appended.
    pub records: u64,
    /// Drain transfers completed.
    pub drain_ops: u64,
    /// Highest framed occupancy any node's log reached.
    pub occupancy_peak: u64,
    /// Total time appends spent parked on a full log, nanoseconds.
    pub stall_ns: u64,
}

/// One appended, not-yet-drained record.
#[derive(Debug, Clone, Copy)]
struct Rec {
    file: u32,
    offset: u64,
    bytes: u64,
}

/// An append parked on a full log.
#[derive(Debug, Clone, Copy)]
struct Parked {
    token: IoToken,
    node: NodeId,
    file: u32,
    offset: u64,
    bytes: u64,
    issued: SimTime,
    is_async: bool,
}

/// A read/lsize parked until its file drains.
#[derive(Debug, Clone, Copy)]
struct Waiter {
    token: IoToken,
    node: NodeId,
    req: IoRequest,
    is_async: bool,
}

/// A `Sync` parked until the file's parked appends reach the log.
#[derive(Debug, Clone, Copy)]
struct SyncParked {
    token: IoToken,
    node: NodeId,
    file: u32,
    issued: SimTime,
}

/// Per-node log-device state.
#[derive(Debug, Default)]
struct NodeLog {
    /// Append head busy until this instant.
    busy_until: SimTime,
    /// Framed bytes currently in the log.
    occupied: u64,
    /// High-water mark of `occupied`.
    hwm: u64,
    /// Appended records awaiting drain, in append order.
    queue: VecDeque<Rec>,
    /// Appends parked on a full log, in arrival order.
    parked: VecDeque<Parked>,
    /// In-flight drain transfer, if any (one per node).
    draining: Option<IoToken>,
    /// Drain read head busy until this instant (paces `drain_rate`).
    drain_ready: SimTime,
    /// Accumulated full-log stall time, ns.
    stall_ns: u64,
}

/// Per-file absorption state.
#[derive(Debug, Default)]
struct FileState {
    /// Whether writes to this file go through the log.
    absorb: bool,
    /// Records appended but not yet drained (any node).
    pending_records: u64,
    /// Appends parked on a full log (any node).
    parked_appends: u64,
    /// Completion instant of the file's latest append.
    last_append_done: SimTime,
}

/// Blog-private timer payloads.
#[derive(Debug)]
enum TimerEvent {
    /// An inner drain completion, re-armed to fire at its completion time.
    InnerDone(IoToken, IoResult),
    /// The drain read-back finished; hand the extent to the inner backend.
    DrainSubmit(NodeId),
    /// Try to start the next drain on this node.
    Kick(NodeId),
}

/// An in-flight drain transfer.
#[derive(Debug, Clone, Copy)]
struct Drain {
    node: NodeId,
    file: u32,
    offset: u64,
    bytes: u64,
    records: u64,
    framed: u64,
}

/// The burst-log tier in front of an inner backend.
#[derive(Debug)]
pub struct Blog<I> {
    inner: I,
    params: BlogParams,
    files: FastMap<u32, FileState>,
    nodes: FastMap<NodeId, NodeLog>,
    /// Per-(node, file) pointer for absorbed independent-pointer files.
    pos: FastMap<(NodeId, u32), u64>,
    timers: FastMap<u64, TimerEvent>,
    drains: FastMap<IoToken, Drain>,
    read_waiters: Vec<Waiter>,
    sync_waiters: Vec<SyncParked>,
    /// First drain fault not yet surfaced through a `Sync`.
    sticky_fault: Option<IoFault>,
    next_timer: u64,
    next_drain_token: u64,
    appended_bytes: u64,
    drained_bytes: u64,
    records: u64,
    drain_ops: u64,
}

impl<I: DrainBackend> Blog<I> {
    /// Wrap `inner` with a log tier.
    pub fn new(inner: I, params: BlogParams) -> Blog<I> {
        Blog {
            inner,
            params,
            files: FastMap::default(),
            nodes: FastMap::default(),
            pos: FastMap::default(),
            timers: FastMap::default(),
            drains: FastMap::default(),
            read_waiters: Vec::new(),
            sync_waiters: Vec::new(),
            sticky_fault: None,
            next_timer: 0,
            next_drain_token: 0,
            appended_bytes: 0,
            drained_bytes: 0,
            records: 0,
            drain_ops: 0,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// The wrapped backend, mutably.
    pub fn inner_mut(&mut self) -> &mut I {
        &mut self.inner
    }

    /// Unwrap into the inner backend (trace finalization).
    pub fn into_inner(self) -> I {
        self.inner
    }

    /// Drain-health counters as of now.
    pub fn stats(&self) -> BlogStats {
        BlogStats {
            appended_bytes: self.appended_bytes,
            drained_bytes: self.drained_bytes,
            pending_bytes: self.nodes.values().map(|n| n.occupied).sum(),
            records: self.records,
            drain_ops: self.drain_ops,
            occupancy_peak: self.nodes.values().map(|n| n.hwm).max().unwrap_or(0),
            stall_ns: self.nodes.values().map(|n| n.stall_ns).sum(),
        }
    }

    /// Allocate a blog-private timer id carrying `ev`.
    fn arm(&mut self, ev: TimerEvent) -> u64 {
        self.next_timer += 1;
        let id = BLOG_TIMER_BIT | self.next_timer;
        self.timers.insert(id, ev);
        id
    }

    /// Forward everything the inner backend scheduled, intercepting drain
    /// completions: they carry synthetic tokens the engine never issued, so
    /// they are re-armed as blog timers at their completion instant instead
    /// of reaching the engine.
    fn forward_filtered(&mut self, mut inner_sched: Sched, sched: &mut Sched) {
        for (tok, at, res) in inner_sched.take_completions() {
            if tok >= DRAIN_TOKEN_BASE {
                let id = self.arm(TimerEvent::InnerDone(tok, res));
                sched.timer(at, id);
            } else {
                sched.complete_io(tok, at, res);
            }
        }
        for (at, t) in inner_sched.take_timers() {
            sched.timer(at, t);
        }
    }

    /// Submit a request to the inner backend and filter its schedule.
    fn forward(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    ) {
        let mut inner_sched = Sched::new();
        self.inner
            .submit(node, now, req, token, is_async, &mut inner_sched);
        self.forward_filtered(inner_sched, sched);
    }

    /// Whether `file` has absorbed writes not yet drained into the inner
    /// backend (in the log, in flight, or parked).
    fn file_pending(&self, file: u32) -> bool {
        self.files
            .get(&file)
            .is_some_and(|f| f.pending_records > 0 || f.parked_appends > 0)
    }

    /// Absorb one write: append to the node's log (or park on overflow).
    #[allow(clippy::too_many_arguments)]
    fn append_write(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    ) {
        let file = req.file;
        let pos = self.pos.entry((node, file)).or_insert(0);
        let offset = req.offset.unwrap_or(*pos);
        *pos = offset + req.bytes;
        let framed = req.bytes + self.params.device.frame_bytes;
        if framed > self.params.log_bytes {
            // Oversized for the whole log: bypass straight to the backend
            // (which traces and completes it like any direct write).
            let direct = IoRequest {
                offset: Some(offset),
                ..req
            };
            self.forward(node, now, direct, token, is_async, sched);
            return;
        }
        if is_async {
            // Trace the issue interval, mirroring the direct backends'
            // convention for asynchronous operations.
            let issue_end = now + self.inner.issue_cost(node, &req);
            self.inner.drain_sink().record(
                IoEvent::new(node, file, IoOp::AsyncRead)
                    .span(now.nanos(), issue_end.nanos())
                    .extent(offset, req.bytes),
            );
        }
        let nl = self.nodes.entry(node).or_default();
        if nl.occupied + framed > self.params.log_bytes {
            nl.parked.push_back(Parked {
                token,
                node,
                file,
                offset,
                bytes: req.bytes,
                issued: now,
                is_async,
            });
            self.files.entry(file).or_default().parked_appends += 1;
            return;
        }
        self.do_append(
            node, now, now, file, offset, req.bytes, token, is_async, sched,
        );
    }

    /// Commit one record to the node's log device and acknowledge it.
    #[allow(clippy::too_many_arguments)]
    fn do_append(
        &mut self,
        node: NodeId,
        arrive: SimTime,
        issued: SimTime,
        file: u32,
        offset: u64,
        bytes: u64,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    ) {
        let dev = self.params.device;
        let framed = bytes + dev.frame_bytes;
        let nl = self.nodes.entry(node).or_default();
        let start = arrive.max(nl.busy_until);
        let done = start + dev.append_latency + transfer_time(bytes, dev.append_rate);
        nl.busy_until = done;
        nl.occupied += framed;
        nl.hwm = nl.hwm.max(nl.occupied);
        nl.queue.push_back(Rec {
            file,
            offset,
            bytes,
        });
        let fs = self.files.entry(file).or_default();
        fs.pending_records += 1;
        fs.last_append_done = fs.last_append_done.max(done);
        self.appended_bytes += bytes;
        self.records += 1;
        if !is_async {
            self.inner.drain_sink().record(
                IoEvent::new(node, file, IoOp::Write)
                    .span(issued.nanos(), done.nanos())
                    .extent(offset, bytes),
            );
        }
        sched.complete_io(
            token,
            done,
            IoResult {
                bytes,
                queued: start.since(issued),
                service: done.since(start),
                fault: None,
            },
        );
        let id = self.arm(TimerEvent::Kick(node));
        sched.timer(done, id);
    }

    /// Try to start the next drain transfer on `node`.
    fn kick(&mut self, node: NodeId, now: SimTime, sched: &mut Sched) {
        let chunk = self.params.drain_chunk;
        let frame = self.params.device.frame_bytes;
        let rate = self.params.drain_rate;
        let nl = self.nodes.entry(node).or_default();
        if nl.draining.is_some() || nl.queue.is_empty() {
            return;
        }
        if nl.drain_ready > now {
            let at = nl.drain_ready;
            let id = self.arm(TimerEvent::Kick(node));
            sched.timer(at, id);
            return;
        }
        // Coalesce contiguous same-file records into one extent.
        let first = nl.queue.pop_front().expect("non-empty queue");
        let mut bytes = first.bytes;
        let mut records = 1u64;
        while let Some(next) = nl.queue.front() {
            if next.file == first.file
                && next.offset == first.offset + bytes
                && bytes + next.bytes <= chunk
            {
                bytes += next.bytes;
                records += 1;
                nl.queue.pop_front();
            } else {
                break;
            }
        }
        self.next_drain_token += 1;
        let token = DRAIN_TOKEN_BASE + self.next_drain_token;
        nl.draining = Some(token);
        let read_done = now + transfer_time(bytes, rate);
        nl.drain_ready = read_done;
        self.drains.insert(
            token,
            Drain {
                node,
                file: first.file,
                offset: first.offset,
                bytes,
                records,
                framed: bytes + records * frame,
            },
        );
        let id = self.arm(TimerEvent::DrainSubmit(node));
        sched.timer(read_done, id);
    }

    /// The drain read-back finished: hand the extent to the inner backend.
    fn drain_submit(&mut self, node: NodeId, now: SimTime, sched: &mut Sched) {
        let token = self
            .nodes
            .get(&node)
            .and_then(|n| n.draining)
            .expect("drain submit without in-flight drain");
        let d = *self.drains.get(&token).expect("known drain");
        let mut inner_sched = Sched::new();
        self.inner.submit_drain(
            node,
            now,
            d.file,
            d.offset,
            d.bytes,
            token,
            &mut inner_sched,
        );
        self.forward_filtered(inner_sched, sched);
    }

    /// A drain transfer completed in the inner backend.
    fn inner_done(&mut self, token: IoToken, result: IoResult, now: SimTime, sched: &mut Sched) {
        let d = self.drains.remove(&token).expect("known drain");
        self.drain_ops += 1;
        if let Some(f) = result.fault {
            self.sticky_fault.get_or_insert(f);
        } else {
            self.drained_bytes += d.bytes;
        }
        let nl = self.nodes.entry(d.node).or_default();
        nl.draining = None;
        nl.occupied = nl.occupied.saturating_sub(d.framed);
        let fs = self.files.entry(d.file).or_default();
        fs.pending_records = fs.pending_records.saturating_sub(d.records);
        // Unpark appends that now fit, oldest first.
        let cap = self.params.log_bytes;
        let frame = self.params.device.frame_bytes;
        let mut unparked = Vec::new();
        {
            let nl = self.nodes.entry(d.node).or_default();
            while let Some(p) = nl.parked.front().copied() {
                if nl.occupied + p.bytes + frame <= cap {
                    nl.parked.pop_front();
                    nl.stall_ns += now.since(p.issued).nanos();
                    // Reserve immediately so the loop sees the new occupancy.
                    nl.occupied += p.bytes + frame;
                    unparked.push(p);
                } else {
                    break;
                }
            }
            // `do_append` re-adds the reservation; give it back first.
            for p in &unparked {
                nl.occupied -= p.bytes + frame;
            }
        }
        for p in unparked {
            self.files.entry(p.file).or_default().parked_appends -= 1;
            self.do_append(
                p.node, now, p.issued, p.file, p.offset, p.bytes, p.token, p.is_async, sched,
            );
        }
        self.release_waiters(now, sched);
        self.kick(d.node, now, sched);
    }

    /// Release reads/lsizes whose file fully drained and syncs whose
    /// parked appends all reached the log.
    fn release_waiters(&mut self, now: SimTime, sched: &mut Sched) {
        let mut i = 0;
        while i < self.read_waiters.len() {
            if !self.file_pending(self.read_waiters[i].req.file) {
                let w = self.read_waiters.swap_remove(i);
                let req = self.resolve_read(w.node, w.req);
                self.forward(w.node, now, req, w.token, w.is_async, sched);
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.sync_waiters.len() {
            let file = self.sync_waiters[i].file;
            let parked = self.files.get(&file).map(|f| f.parked_appends).unwrap_or(0);
            if parked == 0 {
                let s = self.sync_waiters.swap_remove(i);
                self.complete_sync(s.token, s.node, s.file, s.issued, now, sched);
            } else {
                i += 1;
            }
        }
    }

    /// Resolve an absorbed-file read/lsize against the blog's pointer.
    fn resolve_read(&mut self, node: NodeId, req: IoRequest) -> IoRequest {
        if req.verb != IoVerb::Read {
            return req;
        }
        let pos = self.pos.entry((node, req.file)).or_insert(0);
        let offset = req.offset.unwrap_or(*pos);
        *pos = offset + req.bytes;
        IoRequest {
            offset: Some(offset),
            ..req
        }
    }

    /// Acknowledge a `Sync`: one `Flush` at local log-flush cost, carrying
    /// any pending durability fault.
    fn complete_sync(
        &mut self,
        token: IoToken,
        node: NodeId,
        file: u32,
        issued: SimTime,
        now: SimTime,
        sched: &mut Sched,
    ) {
        let at = now.max(
            self.files
                .get(&file)
                .map(|f| f.last_append_done)
                .unwrap_or(SimTime::ZERO),
        );
        let done = at + self.params.device.append_latency;
        self.inner
            .drain_sink()
            .record(IoEvent::new(node, file, IoOp::Flush).span(issued.nanos(), done.nanos()));
        let fault = self.sticky_fault.take().or({
            if self.inner.any_data_lost() {
                Some(IoFault::DataLoss)
            } else {
                None
            }
        });
        sched.complete_io(
            token,
            done,
            IoResult {
                bytes: 0,
                queued: SimDuration::ZERO,
                service: done.since(issued),
                fault,
            },
        );
    }
}

impl<I: DrainBackend> IoService for Blog<I> {
    fn submit(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    ) {
        let absorb = self.files.get(&req.file).map(|f| f.absorb).unwrap_or(false);
        match req.verb {
            IoVerb::Open => {
                if let Some(mode) = AccessMode::from_code(req.hint) {
                    let fs = self.files.entry(req.file).or_default();
                    fs.absorb = matches!(mode, AccessMode::MUnix | AccessMode::MAsync);
                }
                self.forward(node, now, req, token, is_async, sched);
            }
            IoVerb::Seek if absorb => {
                self.pos.insert((node, req.file), req.offset.unwrap_or(0));
                self.forward(node, now, req, token, is_async, sched);
            }
            IoVerb::Write if absorb => {
                self.append_write(node, now, req, token, is_async, sched);
            }
            IoVerb::Read | IoVerb::Lsize if absorb => {
                if self.file_pending(req.file) {
                    self.read_waiters.push(Waiter {
                        token,
                        node,
                        req,
                        is_async,
                    });
                } else {
                    let req = self.resolve_read(node, req);
                    self.forward(node, now, req, token, is_async, sched);
                }
            }
            IoVerb::Sync if absorb => {
                let parked = self
                    .files
                    .get(&req.file)
                    .map(|f| f.parked_appends)
                    .unwrap_or(0);
                if parked > 0 {
                    self.sync_waiters.push(SyncParked {
                        token,
                        node,
                        file: req.file,
                        issued: now,
                    });
                } else {
                    self.complete_sync(token, node, req.file, now, now, sched);
                }
            }
            _ => self.forward(node, now, req, token, is_async, sched),
        }
    }

    fn on_timer(&mut self, now: SimTime, timer: u64, sched: &mut Sched) {
        if timer & BLOG_TIMER_BIT != 0 {
            match self.timers.remove(&timer).expect("unknown blog timer") {
                TimerEvent::Kick(node) => self.kick(node, now, sched),
                TimerEvent::DrainSubmit(node) => self.drain_submit(node, now, sched),
                TimerEvent::InnerDone(token, result) => self.inner_done(token, result, now, sched),
            }
        } else {
            let mut inner_sched = Sched::new();
            self.inner.on_timer(now, timer, &mut inner_sched);
            self.forward_filtered(inner_sched, sched);
        }
    }

    fn on_start(&mut self, sched: &mut Sched) {
        let mut inner_sched = Sched::new();
        self.inner.on_start(&mut inner_sched);
        self.forward_filtered(inner_sched, sched);
    }

    fn issue_cost(&self, node: NodeId, req: &IoRequest) -> SimDuration {
        self.inner.issue_cost(node, req)
    }

    fn on_iowait(&mut self, node: NodeId, file: u32, wait_start: SimTime, wait_end: SimTime) {
        self.inner.on_iowait(node, file, wait_start, wait_end);
    }

    fn on_run_end(&mut self, now: SimTime) {
        self.inner.on_run_end(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BinaryHeap;

    /// Inner backend double: completes plain submits after 1 ms, drain
    /// transfers after `drain_delay`, and records every drain extent.
    struct Mock {
        sink: TraceSink,
        drain_delay: SimDuration,
        drains: Vec<(NodeId, u32, u64, u64)>,
        submits: Vec<IoRequest>,
        fail_drains: bool,
        lost: bool,
    }

    impl Mock {
        fn new() -> Mock {
            Mock {
                sink: TraceSink::new("mock"),
                drain_delay: SimDuration::from_millis(10),
                drains: Vec::new(),
                submits: Vec::new(),
                fail_drains: false,
                lost: false,
            }
        }
    }

    impl IoService for Mock {
        fn submit(
            &mut self,
            _node: NodeId,
            now: SimTime,
            req: IoRequest,
            token: IoToken,
            _is_async: bool,
            sched: &mut Sched,
        ) {
            self.submits.push(req);
            sched.complete_io(
                token,
                now + SimDuration::from_millis(1),
                IoResult {
                    bytes: req.bytes,
                    ..IoResult::default()
                },
            );
        }

        fn on_timer(&mut self, _now: SimTime, timer: u64, _sched: &mut Sched) {
            panic!("mock has no timers (got {timer})");
        }

        fn issue_cost(&self, _node: NodeId, _req: &IoRequest) -> SimDuration {
            SimDuration::from_micros(100)
        }
    }

    impl DrainBackend for Mock {
        fn submit_drain(
            &mut self,
            node: NodeId,
            now: SimTime,
            file: u32,
            offset: u64,
            bytes: u64,
            token: IoToken,
            sched: &mut Sched,
        ) {
            self.drains.push((node, file, offset, bytes));
            let fault = self.fail_drains.then_some(IoFault::Unavailable);
            sched.complete_io(
                token,
                now + self.drain_delay,
                IoResult {
                    bytes,
                    fault,
                    ..IoResult::default()
                },
            );
        }

        fn drain_sink(&mut self) -> &mut TraceSink {
            &mut self.sink
        }

        fn any_data_lost(&self) -> bool {
            self.lost
        }
    }

    /// Minimal event loop: runs blog timers in time order, collecting
    /// engine-visible completions.
    struct Loop {
        blog: Blog<Mock>,
        heap: BinaryHeap<std::cmp::Reverse<(SimTime, u64, u64)>>,
        seq: u64,
        completions: Vec<(IoToken, SimTime, IoResult)>,
    }

    impl Loop {
        fn new(params: BlogParams) -> Loop {
            Loop {
                blog: Blog::new(Mock::new(), params),
                heap: BinaryHeap::new(),
                seq: 0,
                completions: Vec::new(),
            }
        }

        fn absorb_sched(&mut self, mut sched: Sched) {
            self.completions.extend(sched.take_completions());
            for (at, t) in sched.take_timers() {
                self.seq += 1;
                self.heap.push(std::cmp::Reverse((at, self.seq, t)));
            }
        }

        fn submit(&mut self, node: NodeId, now: SimTime, req: IoRequest, token: IoToken) {
            let mut sched = Sched::new();
            self.blog.submit(node, now, req, token, false, &mut sched);
            self.absorb_sched(sched);
        }

        fn run(&mut self) {
            while let Some(std::cmp::Reverse((at, _, timer))) = self.heap.pop() {
                let mut sched = Sched::new();
                self.blog.on_timer(at, timer, &mut sched);
                self.absorb_sched(sched);
            }
        }

        fn completion(&self, token: IoToken) -> Option<&(IoToken, SimTime, IoResult)> {
            self.completions.iter().find(|(t, _, _)| *t == token)
        }
    }

    fn open(file: u32, mode: AccessMode) -> IoRequest {
        IoRequest::open(file, mode.code())
    }

    #[test]
    fn absorbed_write_acks_at_log_speed_then_drains() {
        let mut l = Loop::new(BlogParams::new(64, 8.0));
        l.submit(0, SimTime::ZERO, open(1, AccessMode::MUnix), 1);
        l.submit(0, SimTime(1_000_000), IoRequest::write(1, 100_000), 2);
        l.run();
        // Ack = append latency + 100 KB at 30 MB/s ≈ 0.5 ms + 3.3 ms.
        let (_, at, res) = l.completion(2).expect("write acked");
        assert!(res.fault.is_none());
        assert_eq!(res.bytes, 100_000);
        let latency = at.since(SimTime(1_000_000));
        assert!(
            latency < SimDuration::from_millis(5),
            "log ack took {latency:?}"
        );
        // The record drained into the inner backend with its exact extent.
        assert_eq!(l.blog.inner().drains, vec![(0, 1, 0, 100_000)]);
        let s = l.blog.stats();
        assert_eq!(s.appended_bytes, 100_000);
        assert_eq!(s.drained_bytes, 100_000);
        assert_eq!(s.pending_bytes, 0);
        assert!(s.occupancy_peak > 100_000);
    }

    #[test]
    fn drainer_coalesces_contiguous_records() {
        let mut l = Loop::new(BlogParams::new(64, 1000.0));
        l.submit(0, SimTime::ZERO, open(1, AccessMode::MUnix), 1);
        // Three back-to-back 4 KB records at the same instant: the device
        // serializes the appends, so all three are queued before the first
        // drain kick fires.
        for (i, tok) in [(0u64, 2u64), (1, 3), (2, 4)] {
            l.submit(
                0,
                SimTime::ZERO,
                IoRequest {
                    offset: Some(i * 4096),
                    ..IoRequest::write(1, 4096)
                },
                tok,
            );
        }
        l.run();
        // One coalesced 12 KB drain, not three.
        assert_eq!(l.blog.inner().drains, vec![(0, 1, 0, 3 * 4096)]);
        assert_eq!(l.blog.stats().drain_ops, 1);
    }

    #[test]
    fn full_log_parks_appends_and_accounts_stall() {
        // Log fits ~ one 4 KB record (+ framing); second write must wait
        // for the drain to free space.
        let mut params = BlogParams::new(64, 8.0);
        params.log_bytes = 5000;
        let mut l = Loop::new(params);
        l.submit(0, SimTime::ZERO, open(1, AccessMode::MUnix), 1);
        l.submit(0, SimTime::ZERO, IoRequest::write(1, 4096), 2);
        l.submit(0, SimTime::ZERO, IoRequest::write(1, 4096), 3);
        l.run();
        let (_, first_at, _) = *l.completion(2).expect("first acked");
        let (_, second_at, _) = *l.completion(3).expect("second acked");
        assert!(second_at > first_at);
        let s = l.blog.stats();
        assert!(s.stall_ns > 0, "no stall recorded");
        assert_eq!(s.drained_bytes, 2 * 4096);
    }

    #[test]
    fn sync_flushes_fast_and_surfaces_drain_faults() {
        let mut l = Loop::new(BlogParams::new(64, 8.0));
        l.blog.inner_mut().fail_drains = true;
        l.submit(0, SimTime::ZERO, open(1, AccessMode::MUnix), 1);
        l.submit(0, SimTime::ZERO, IoRequest::write(1, 4096), 2);
        l.run();
        // Write itself acked cleanly (it reached the log).
        assert!(l.completion(2).unwrap().2.fault.is_none());
        // Sync after the failed drain carries the typed fault.
        l.submit(0, SimTime(1_000_000_000), IoRequest::sync(1), 3);
        l.run();
        let (_, at, res) = *l.completion(3).expect("sync acked");
        assert_eq!(res.fault, Some(IoFault::Unavailable));
        // The flush interval is short (local log flush) but nonzero.
        let d = at.since(SimTime(1_000_000_000));
        assert!(d.nanos() > 0 && d < SimDuration::from_millis(5));
        // The fault is sticky exactly once.
        l.blog.inner_mut().fail_drains = false;
        l.submit(0, SimTime(2_000_000_000), IoRequest::sync(1), 4);
        l.run();
        assert_eq!(l.completion(4).unwrap().2.fault, None);
    }

    #[test]
    fn reads_park_until_their_file_drains() {
        let mut l = Loop::new(BlogParams::new(64, 8.0));
        l.submit(0, SimTime::ZERO, open(1, AccessMode::MUnix), 1);
        l.submit(0, SimTime::ZERO, IoRequest::write(1, 65536), 2);
        // Read-back from offset 0 while the record is still undrained.
        l.submit(
            0,
            SimTime(1),
            IoRequest {
                offset: Some(0),
                ..IoRequest::read(1, 65536)
            },
            3,
        );
        l.run();
        let (_, read_at, res) = *l.completion(3).expect("read completed");
        assert_eq!(res.bytes, 65536);
        // The read was forwarded only after the drain transfer finished.
        assert!(!l.blog.inner().drains.is_empty());
        let (_, write_at, _) = *l.completion(2).unwrap();
        assert!(read_at > write_at);
        // The forwarded read reached the inner backend with its offset
        // resolved.
        let fwd = l
            .blog
            .inner()
            .submits
            .iter()
            .find(|r| r.verb == IoVerb::Read)
            .expect("read forwarded");
        assert_eq!(fwd.offset, Some(0));
    }

    #[test]
    fn shared_pointer_modes_bypass_the_log() {
        let mut l = Loop::new(BlogParams::new(64, 8.0));
        l.submit(0, SimTime::ZERO, open(1, AccessMode::MRecord), 1);
        l.submit(0, SimTime::ZERO, IoRequest::write(1, 4096), 2);
        l.run();
        // The write went straight to the inner backend, nothing logged.
        assert!(l.blog.inner().drains.is_empty());
        assert!(l
            .blog
            .inner()
            .submits
            .iter()
            .any(|r| r.verb == IoVerb::Write));
        assert_eq!(l.blog.stats().records, 0);
    }

    #[test]
    fn oversized_writes_bypass_the_log() {
        let mut params = BlogParams::new(64, 8.0);
        params.log_bytes = 1000;
        let mut l = Loop::new(params);
        l.submit(0, SimTime::ZERO, open(1, AccessMode::MUnix), 1);
        l.submit(0, SimTime::ZERO, IoRequest::write(1, 50_000), 2);
        l.run();
        assert!(l.completion(2).is_some());
        assert!(l
            .blog
            .inner()
            .submits
            .iter()
            .any(|r| r.verb == IoVerb::Write && r.offset == Some(0)));
        assert_eq!(l.blog.stats().appended_bytes, 0);
    }

    #[test]
    fn inner_data_loss_surfaces_on_sync() {
        let mut l = Loop::new(BlogParams::new(64, 8.0));
        l.blog.inner_mut().lost = true;
        l.submit(0, SimTime::ZERO, open(1, AccessMode::MUnix), 1);
        l.submit(0, SimTime(1), IoRequest::sync(1), 2);
        l.run();
        assert_eq!(l.completion(2).unwrap().2.fault, Some(IoFault::DataLoss));
    }
}

//! # sio-blog — host-side log-structured burst-buffer tier
//!
//! The paper's checkpoint phases emit synchronized write bursts that
//! overwhelm the shared I/O nodes (§5, Fig. 4): every byte pays the full
//! file-system software path — seek RPC, atomic-write serialization, array
//! queueing — at the worst possible moment. This crate fronts any backend
//! with a per-compute-node append-only log on durable local media:
//!
//! * **Commit at log speed.** Writes to independent-pointer files append
//!   framed, checksummed records to the node's log device and acknowledge
//!   as soon as the frame is on media — hundreds of microseconds instead of
//!   tens of contended milliseconds.
//! * **Drain in the background.** A per-node drainer coalesces contiguous
//!   records into large extents and pumps them into the wrapped backend
//!   through its ordinary fault-tolerant write path, overlapping the next
//!   compute phase.
//! * **Recover from log ∩ backend.** After a crash, a record is durable iff
//!   its log frame validates (magic + length + FNV-1a over header and
//!   payload — torn tails never validate, the same discipline as
//!   `sio_core::checkpoint`) **or** its drain transfer completed. The
//!   byte-level model in [`log`] is what the crash proptests truncate at
//!   every byte boundary.
//!
//! [`fs::Blog`] is the discrete-event wrapper: it implements
//! `paragon_sim::engine::IoService` in front of any [`fs::DrainBackend`]
//! and composes with the backend registry as `blog+pfs`, `blog+ppfs`, and
//! `blog+cio`.

#![warn(missing_docs)]

pub mod fs;
pub mod log;

pub use fs::{Blog, BlogParams, BlogStats, DrainBackend, DRAIN_TOKEN_BASE};
pub use log::{durable_epoch, BurstLog, LogRecord};

//! Byte-level burst-log model: framed, checksummed append records.
//!
//! This is the recovery-facing view of the log device the DES wrapper
//! ([`crate::fs::Blog`]) simulates in time. Each appended record becomes one
//! self-validating frame:
//!
//! ```text
//! +-------+-------+------+--------+-----+----------+------------------+
//! | magic | epoch | file | offset | len | checksum | payload (len B)  |
//! | 4 B   | 4 B   | 4 B  | 8 B    | 8 B | 8 B      |                  |
//! +-------+-------+------+--------+-----+----------+------------------+
//! ```
//!
//! All integers little-endian; the checksum is 64-bit FNV-1a
//! ([`sio_core::sddf::fingerprint_bytes`]) over the header fields that
//! precede it plus the payload — the same discipline as
//! [`sio_core::checkpoint`]: a torn tail (any truncation, any flipped
//! byte) never validates, so [`replay`](BurstLog::replay) returns exactly
//! the durable prefix.
//!
//! Garbage collection is head-pointer advance: once a record's drain
//! transfer into the wrapped backend completes, [`BurstLog::gc`] drops
//! whole frames from the front. The head pointer is persisted only at
//! frame boundaries, so a crash mid-GC leaves a log that still replays
//! from a valid frame start (the proptests crash GC at every record
//! boundary).

use sio_core::sddf::fingerprint_bytes;

/// Frame magic: "SLOG".
pub const LOG_MAGIC: [u8; 4] = *b"SLOG";

/// Fixed frame-header length in bytes (through the checksum field).
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 4 + 8 + 8 + 8;

/// One logical record: an extent of `payload` bytes written to `file` at
/// `offset` during checkpoint `epoch` (0 for non-checkpoint data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Checkpoint epoch the record belongs to (0 = plain data).
    pub epoch: u32,
    /// Target file id in the wrapped backend.
    pub file: u32,
    /// Byte offset of the extent in the target file.
    pub offset: u64,
    /// Extent payload.
    pub payload: Vec<u8>,
}

impl LogRecord {
    /// Total framed size of this record on the log.
    pub fn framed_len(&self) -> usize {
        FRAME_HEADER_LEN + self.payload.len()
    }
}

/// An append-only byte log with frame-boundary garbage collection.
#[derive(Debug, Clone, Default)]
pub struct BurstLog {
    buf: Vec<u8>,
    /// Framed lengths of live records, front to back (GC bookkeeping).
    frame_lens: Vec<usize>,
}

impl BurstLog {
    /// An empty log.
    pub fn new() -> BurstLog {
        BurstLog::default()
    }

    /// Append one framed record.
    pub fn append(&mut self, rec: &LogRecord) {
        let mut header = Vec::with_capacity(FRAME_HEADER_LEN);
        header.extend_from_slice(&LOG_MAGIC);
        header.extend_from_slice(&rec.epoch.to_le_bytes());
        header.extend_from_slice(&rec.file.to_le_bytes());
        header.extend_from_slice(&rec.offset.to_le_bytes());
        header.extend_from_slice(&(rec.payload.len() as u64).to_le_bytes());
        let mut sum_input = header.clone();
        sum_input.extend_from_slice(&rec.payload);
        let checksum = fingerprint_bytes(&sum_input);
        self.buf.extend_from_slice(&header);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf.extend_from_slice(&rec.payload);
        self.frame_lens.push(rec.framed_len());
    }

    /// The raw log bytes (what survives a crash, modulo a torn tail).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Number of live (not yet collected) records.
    pub fn len(&self) -> usize {
        self.frame_lens.len()
    }

    /// Whether the log holds no live records.
    pub fn is_empty(&self) -> bool {
        self.frame_lens.is_empty()
    }

    /// Advance the head past the first `records` frames (their drain
    /// transfers completed). The head only ever lands on a frame boundary,
    /// so a crash after any prefix of a multi-record GC leaves a log that
    /// replays cleanly.
    pub fn gc(&mut self, records: usize) {
        let n = records.min(self.frame_lens.len());
        let drop_bytes: usize = self.frame_lens[..n].iter().sum();
        self.buf.drain(..drop_bytes);
        self.frame_lens.drain(..n);
    }

    /// Replay a (possibly torn) byte image of a log: decode frames front to
    /// back, stopping at the first frame that fails to validate. Returns
    /// exactly the durable record prefix.
    pub fn replay(bytes: &[u8]) -> Vec<LogRecord> {
        let mut out = Vec::new();
        let mut at = 0usize;
        while bytes.len() - at >= FRAME_HEADER_LEN {
            let h = &bytes[at..at + FRAME_HEADER_LEN];
            if h[0..4] != LOG_MAGIC {
                break;
            }
            let epoch = u32::from_le_bytes(h[4..8].try_into().unwrap());
            let file = u32::from_le_bytes(h[8..12].try_into().unwrap());
            let offset = u64::from_le_bytes(h[12..20].try_into().unwrap());
            let len = u64::from_le_bytes(h[20..28].try_into().unwrap()) as usize;
            let stored_sum = u64::from_le_bytes(h[28..36].try_into().unwrap());
            let payload_start = at + FRAME_HEADER_LEN;
            let Some(payload_end) = payload_start.checked_add(len) else {
                break;
            };
            if payload_end > bytes.len() {
                break; // torn tail: payload truncated
            }
            let payload = &bytes[payload_start..payload_end];
            let mut sum_input = Vec::with_capacity(FRAME_HEADER_LEN - 8 + len);
            sum_input.extend_from_slice(&h[..FRAME_HEADER_LEN - 8]);
            sum_input.extend_from_slice(payload);
            if fingerprint_bytes(&sum_input) != stored_sum {
                break;
            }
            out.push(LogRecord {
                epoch,
                file,
                offset,
                payload: payload.to_vec(),
            });
            at = payload_end;
        }
        out
    }
}

/// The log-aware durable-cut rule (DESIGN.md §5): epoch `e` is durable iff
/// every epoch `1..=e` is covered by a validating log frame **or** a
/// completed drain transfer. `replayed` is the output of
/// [`BurstLog::replay`] on the crashed log image; `drained` lists the
/// epochs whose drain into the wrapped backend completed before the crash.
pub fn durable_epoch(replayed: &[LogRecord], drained: &[u32]) -> u32 {
    let mut e = 0u32;
    loop {
        let next = e + 1;
        let in_log = replayed.iter().any(|r| r.epoch == next);
        let in_backend = drained.contains(&next);
        if in_log || in_backend {
            e = next;
        } else {
            return e;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: u32, offset: u64, payload: &[u8]) -> LogRecord {
        LogRecord {
            epoch,
            file: 7,
            offset,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let mut log = BurstLog::new();
        let a = rec(1, 0, b"alpha");
        let b = rec(2, 4096, b"beta-payload");
        log.append(&a);
        log.append(&b);
        assert_eq!(BurstLog::replay(log.as_bytes()), vec![a, b]);
    }

    #[test]
    fn any_truncation_never_yields_a_torn_record() {
        let mut log = BurstLog::new();
        log.append(&rec(1, 0, b"first-record-payload"));
        log.append(&rec(2, 100, b"second"));
        let full = log.as_bytes();
        let first_len = FRAME_HEADER_LEN + b"first-record-payload".len();
        for cut in 0..full.len() {
            let replayed = BurstLog::replay(&full[..cut]);
            // A cut inside frame k yields exactly the records before k.
            let expect = if cut < first_len {
                0
            } else if cut < full.len() {
                1
            } else {
                2
            };
            assert_eq!(replayed.len(), expect, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_byte_invalidates_its_frame_only_when_before_it() {
        let mut log = BurstLog::new();
        log.append(&rec(1, 0, b"aaaa"));
        log.append(&rec(2, 10, b"bbbb"));
        let mut bytes = log.as_bytes().to_vec();
        // Flip a byte in the second frame's payload: first record survives.
        let idx = bytes.len() - 1;
        bytes[idx] ^= 0xff;
        let replayed = BurstLog::replay(&bytes);
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].epoch, 1);
    }

    #[test]
    fn gc_drops_whole_frames_and_keeps_the_tail_valid() {
        let mut log = BurstLog::new();
        for e in 1..=4 {
            log.append(&rec(e, e as u64 * 100, b"payload"));
        }
        log.gc(2);
        assert_eq!(log.len(), 2);
        let replayed = BurstLog::replay(log.as_bytes());
        assert_eq!(
            replayed.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // GC past the end is a no-op clamp.
        log.gc(99);
        assert!(log.is_empty());
        assert!(BurstLog::replay(log.as_bytes()).is_empty());
    }

    #[test]
    fn durable_epoch_takes_log_or_backend() {
        let replayed = vec![rec(2, 0, b"x"), rec(3, 0, b"y")];
        // Epoch 1 drained, 2-3 still in the log: cut = 3.
        assert_eq!(durable_epoch(&replayed, &[1]), 3);
        // Epoch 1 nowhere: nothing is durable.
        assert_eq!(durable_epoch(&replayed, &[]), 0);
        // Everything drained, log empty: cut = backend.
        assert_eq!(durable_epoch(&[], &[1, 2]), 2);
    }
}

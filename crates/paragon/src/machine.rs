//! Machine configurations.
//!
//! A [`MachineConfig`] bundles every parameter of the simulated Paragon:
//! node counts, mesh geometry, disk/RAID/interconnect parameters, I/O-node
//! queue discipline, and software-path costs. The presets correspond to the
//! systems of the paper: [`MachineConfig::caltech_paragon`] is the full CCSF
//! machine (512 compute, 16 I/O nodes); [`MachineConfig::paragon_128`] is
//! the 128-node partition every experiment in the paper actually ran on.

use crate::calibration::{self, FaultParams, IoSwCosts};
use crate::disk::DiskParams;
use crate::ionode::{IoNodeSim, QueueDiscipline};
use crate::mesh::{CommCosts, Mesh};
use crate::raid::{Raid3, RaidParams};
use serde::{Deserialize, Serialize};

/// Full machine description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Compute nodes available to applications.
    pub compute_nodes: u32,
    /// I/O nodes, each with one RAID-3 array.
    pub io_nodes: u32,
    /// Member-disk parameters.
    pub disk: DiskParams,
    /// Array geometry.
    pub raid: RaidParams,
    /// Interconnect costs.
    pub comm: CommCosts,
    /// I/O-node queue discipline.
    pub discipline: QueueDiscipline,
    /// File-system software costs.
    pub io_sw: IoSwCosts,
    /// Fault-handling parameters (retry backoff, failover, rebuild chunking).
    pub fault: FaultParams,
    /// Base RNG seed; every stochastic component derives its own stream
    /// from this (same seed ⇒ bit-identical run).
    pub seed: u64,
}

impl MachineConfig {
    /// The CCSF Intel Paragon XP/S as described in §3.2: 512 compute nodes,
    /// 16 I/O nodes each with a RAID-3 array of five 1.2 GB disks.
    pub fn caltech_paragon() -> MachineConfig {
        MachineConfig {
            compute_nodes: 512,
            io_nodes: 16,
            disk: calibration::disk_params(),
            raid: calibration::raid_params(),
            comm: calibration::comm_costs(),
            discipline: QueueDiscipline::Fifo,
            io_sw: calibration::io_sw_costs(),
            fault: calibration::fault_params(),
            seed: 0x51_0995,
        }
    }

    /// The 128-node partition used for every run in the paper's evaluation.
    /// All 16 I/O nodes remain visible (PFS striping is machine-wide).
    pub fn paragon_128() -> MachineConfig {
        MachineConfig {
            compute_nodes: 128,
            ..MachineConfig::caltech_paragon()
        }
    }

    /// A small configuration for unit tests and quick examples.
    pub fn tiny(compute_nodes: u32, io_nodes: u32) -> MachineConfig {
        MachineConfig {
            compute_nodes,
            io_nodes,
            ..MachineConfig::caltech_paragon()
        }
    }

    /// Override the base seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> MachineConfig {
        self.seed = seed;
        self
    }

    /// Override the queue discipline (builder style).
    #[must_use]
    pub fn with_discipline(mut self, d: QueueDiscipline) -> MachineConfig {
        self.discipline = d;
        self
    }

    /// Mesh geometry for this configuration.
    pub fn mesh(&self) -> Mesh {
        Mesh::for_nodes(self.compute_nodes, self.io_nodes)
    }

    /// Build the I/O-node simulators (one per I/O node), each array seeded
    /// from the base seed.
    pub fn build_io_nodes(&self) -> Vec<IoNodeSim> {
        (0..self.io_nodes)
            .map(|i| {
                let mut node = IoNodeSim::new(
                    Raid3::new(self.disk, self.raid, self.seed.wrapping_add(i as u64 + 1)),
                    self.discipline,
                    self.io_sw.server_per_request,
                );
                node.set_rebuild_chunk(self.fault.rebuild_chunk);
                node
            })
            .collect()
    }

    /// Aggregate peak media rate across all arrays, bytes/second.
    pub fn aggregate_disk_rate(&self) -> f64 {
        self.disk.transfer_rate * self.raid.data_disks as f64 * self.io_nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let full = MachineConfig::caltech_paragon();
        assert_eq!(full.compute_nodes, 512);
        assert_eq!(full.io_nodes, 16);
        assert_eq!(full.raid.data_disks, 4);
        let part = MachineConfig::paragon_128();
        assert_eq!(part.compute_nodes, 128);
        assert_eq!(part.io_nodes, 16);
    }

    #[test]
    fn io_nodes_built_with_distinct_seeds() {
        let cfg = MachineConfig::tiny(4, 2);
        let nodes = cfg.build_io_nodes();
        assert_eq!(nodes.len(), 2);
    }

    #[test]
    fn aggregate_rate() {
        let cfg = MachineConfig::caltech_paragon();
        // 16 arrays × 4 data disks × 2.2 MB/s ≈ 140.8 MB/s.
        assert!((cfg.aggregate_disk_rate() - 140.8e6).abs() < 1e5);
    }

    #[test]
    fn builders() {
        let cfg = MachineConfig::tiny(2, 1)
            .with_seed(99)
            .with_discipline(QueueDiscipline::CScan);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.discipline, QueueDiscipline::CScan);
        let mesh = cfg.mesh();
        assert!(mesh.rows * mesh.cols >= 2);
    }
}

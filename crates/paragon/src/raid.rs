//! RAID-3 disk array model.
//!
//! Each Paragon I/O node at the CCSF hosted a RAID-3 array of five 1.2 GB
//! disks (§3.2): four data disks plus one parity disk, byte-striped with
//! spindle synchronization. RAID-3's defining property is that *every*
//! transfer engages all data disks in lockstep, so the array behaves like a
//! single disk with 4× the media rate — which is exactly how we model the
//! common case. Parity gives single-disk fault tolerance: with one failed
//! disk the array still serves reads by reconstructing from the survivors
//! (at a reconstruction penalty) and serves writes at full geometry.
//!
//! Fault model: [`Raid3::fail_disk`] degrades the array; a second failure is
//! a typed [`RaidError::DoubleFailure`] (callers decide whether that means
//! data loss — see [`Raid3::mark_data_lost`]). Recovery is *timed*: a
//! [`Raid3::start_rebuild`] call arms a background rebuild of the whole
//! failed member, driven in chunks by the owning I/O node
//! ([`crate::ionode::IoNodeSim`]) so rebuild traffic competes with
//! foreground requests; the array stays degraded until the last chunk
//! completes.
//!
//! PDES ownership: rebuild state (progress cursor, chunk accounting,
//! degraded/data-lost flags) is part of its owning I/O node's shard-owned
//! lane — rebuilds are driven exclusively by that node's own timer events,
//! so no cross-shard mutation exists (DESIGN.md §8).

use crate::disk::{Disk, DiskParams};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// RAID-3 array parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RaidParams {
    /// Data disks (the CCSF arrays had 4).
    pub data_disks: u32,
    /// Multiplier on service time when reconstructing reads in degraded mode
    /// (XOR of survivors; > 1.0).
    pub degraded_read_penalty: f64,
}

impl RaidParams {
    /// Validate the parameter set; every constructor goes through this.
    pub fn validate(&self) -> Result<(), RaidError> {
        if self.data_disks < 1 {
            return Err(RaidError::InvalidParams {
                reason: "need at least one data disk",
            });
        }
        if self.degraded_read_penalty.is_nan() || self.degraded_read_penalty < 1.0 {
            return Err(RaidError::InvalidParams {
                reason: "degraded_read_penalty must be >= 1",
            });
        }
        Ok(())
    }
}

impl Default for RaidParams {
    fn default() -> Self {
        crate::calibration::raid_params()
    }
}

/// Typed RAID fault-handling errors (reportable, not process-fatal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaidError {
    /// Parameter validation failed.
    InvalidParams {
        /// What was wrong.
        reason: &'static str,
    },
    /// Disk index outside `0..=data_disks`.
    DiskIndexOutOfRange {
        /// Offending index.
        index: u32,
        /// Largest valid index (the parity member).
        max: u32,
    },
    /// A member has already failed; RAID-3 cannot survive a second failure.
    DoubleFailure {
        /// The member already down.
        already_failed: u32,
        /// The member that just failed.
        index: u32,
    },
    /// Rebuild requested on a healthy array.
    NotDegraded,
}

impl fmt::Display for RaidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaidError::InvalidParams { reason } => write!(f, "invalid RAID parameters: {reason}"),
            RaidError::DiskIndexOutOfRange { index, max } => {
                write!(f, "disk index {index} out of range (0..={max})")
            }
            RaidError::DoubleFailure {
                already_failed,
                index,
            } => write!(
                f,
                "second disk failure (member {index}; member {already_failed} already down) — \
                 RAID-3 cannot survive it"
            ),
            RaidError::NotDegraded => write!(f, "rebuild requested on a healthy array"),
        }
    }
}

impl std::error::Error for RaidError {}

/// A RAID-3 array: one logical spindle-synchronized disk of
/// `data_disks × capacity` with `data_disks × transfer_rate`.
#[derive(Debug, Clone)]
pub struct Raid3 {
    raid: RaidParams,
    /// Member-disk media rate (bytes/s), the rebuild bottleneck: the
    /// replacement member can be written no faster than one spindle.
    member_rate: f64,
    /// Member-disk capacity: the amount of data a full rebuild re-writes.
    member_capacity: u64,
    /// The synchronized spindle set, modeled as one disk with scaled rate.
    logical: Disk,
    /// Index of the failed disk, if any (0-based over data+parity).
    failed: Option<u32>,
    /// Bytes of the failed member not yet rebuilt (0 = no rebuild armed).
    rebuild_remaining: u64,
    /// A second member failed while degraded: reads are unrecoverable.
    data_lost: bool,
}

impl Raid3 {
    /// Build an array from member-disk parameters.
    ///
    /// # Panics
    /// On invalid `raid` parameters; use [`Raid3::try_new`] for a typed
    /// error.
    pub fn new(disk: DiskParams, raid: RaidParams, seed: u64) -> Raid3 {
        Raid3::try_new(disk, raid, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build an array, validating `raid` parameters.
    pub fn try_new(disk: DiskParams, raid: RaidParams, seed: u64) -> Result<Raid3, RaidError> {
        raid.validate()?;
        let logical = DiskParams {
            capacity: disk.capacity * raid.data_disks as u64,
            // Byte striping spreads every cylinder across the set, so the
            // logical cylinder holds data_disks × the member cylinder.
            cylinder_bytes: disk.cylinder_bytes * raid.data_disks as u64,
            transfer_rate: disk.transfer_rate * raid.data_disks as f64,
            ..disk
        };
        Ok(Raid3 {
            raid,
            member_rate: disk.transfer_rate,
            member_capacity: disk.capacity,
            logical: Disk::new(logical, seed),
            failed: None,
            rebuild_remaining: 0,
            data_lost: false,
        })
    }

    /// Usable capacity (parity excluded).
    pub fn capacity(&self) -> u64 {
        self.logical.params().capacity
    }

    /// Fail one member disk (data or parity). RAID-3 tolerates exactly one;
    /// an out-of-range index or a second failure is a typed error and leaves
    /// the array state unchanged.
    pub fn fail_disk(&mut self, index: u32) -> Result<(), RaidError> {
        if index > self.raid.data_disks {
            return Err(RaidError::DiskIndexOutOfRange {
                index,
                max: self.raid.data_disks,
            });
        }
        if let Some(already_failed) = self.failed {
            return Err(RaidError::DoubleFailure {
                already_failed,
                index,
            });
        }
        self.failed = Some(index);
        self.rebuild_remaining = 0;
        Ok(())
    }

    /// Record that redundancy is exhausted (a second member failed): reads
    /// can no longer be reconstructed. The caller decides when a
    /// [`RaidError::DoubleFailure`] means this.
    pub fn mark_data_lost(&mut self) {
        self.data_lost = true;
    }

    /// Whether a second failure has made reads unrecoverable.
    pub fn data_lost(&self) -> bool {
        self.data_lost
    }

    /// Whether the array is running degraded.
    pub fn degraded(&self) -> bool {
        self.failed.is_some()
    }

    /// Arm a timed rebuild of the failed member: the whole member capacity
    /// must be re-written (from survivor XOR) before the array leaves
    /// degraded mode. The owning I/O node drives the traffic via
    /// [`Raid3::rebuild_take_chunk`] / [`Raid3::rebuild_chunk_done`].
    pub fn start_rebuild(&mut self) -> Result<(), RaidError> {
        if self.failed.is_none() {
            return Err(RaidError::NotDegraded);
        }
        self.rebuild_remaining = self.member_capacity;
        Ok(())
    }

    /// Bytes of the failed member still to rebuild (0 = none armed/left).
    pub fn rebuild_remaining(&self) -> u64 {
        self.rebuild_remaining
    }

    /// Claim the next rebuild chunk of at most `max_bytes`, returning the
    /// chunk size and its service time: survivors are read and the
    /// replacement written in lockstep, so a member chunk moves at the
    /// single-spindle media rate. Returns `None` when no rebuild is pending.
    pub fn rebuild_take_chunk(&mut self, max_bytes: u64) -> Option<(u64, SimDuration)> {
        let bytes = self.rebuild_remaining.min(max_bytes);
        if bytes == 0 {
            return None;
        }
        self.rebuild_remaining -= bytes;
        Some((bytes, crate::time::transfer_time(bytes, self.member_rate)))
    }

    /// The chunk claimed by [`Raid3::rebuild_take_chunk`] finished. When the
    /// whole member has been re-written the array leaves degraded mode.
    pub fn rebuild_chunk_done(&mut self) {
        if self.rebuild_remaining == 0 && self.failed.is_some() {
            self.failed = None;
        }
    }

    /// Abort an in-flight chunk (node crash mid-rebuild): the bytes go back
    /// to the remaining pool so recovery re-services them.
    pub fn rebuild_abort_chunk(&mut self, bytes: u64) {
        if self.failed.is_some() {
            self.rebuild_remaining += bytes;
        }
    }

    /// Service a read at the array level.
    pub fn read(&mut self, offset: u64, bytes: u64) -> SimDuration {
        let base = self.logical.service(offset, bytes);
        match self.failed {
            // Parity-disk failure does not slow reads.
            Some(i) if i < self.raid.data_disks => base.mul_f64(self.raid.degraded_read_penalty),
            _ => base,
        }
    }

    /// Service a write at the array level. RAID-3 computes parity on the fly
    /// across the synchronized stripe, so writes run at full speed — even
    /// degraded (the lost disk's data is implied by parity).
    pub fn write(&mut self, offset: u64, bytes: u64) -> SimDuration {
        self.logical.service(offset, bytes)
    }

    /// Sequential-continuation write (no seek/rotation), for aggregated runs.
    pub fn write_sequential(&mut self, offset: u64, bytes: u64) -> SimDuration {
        self.logical.service_sequential(offset, bytes)
    }

    /// XOR-reconstruct a lost member's block from the survivors — the data
    /// path RAID-3 uses in degraded mode. Exposed (and property-tested) to
    /// keep the model honest about *why* degraded reads still return data.
    pub fn reconstruct(survivors: &[&[u8]]) -> Vec<u8> {
        let len = survivors.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut out = vec![0u8; len];
        for s in survivors {
            for (o, b) in out.iter_mut().zip(s.iter()) {
                *o ^= *b;
            }
        }
        out
    }

    /// Parity block over a stripe of member blocks.
    pub fn parity(blocks: &[&[u8]]) -> Vec<u8> {
        Raid3::reconstruct(blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> Raid3 {
        Raid3::new(DiskParams::default(), RaidParams::default(), 7)
    }

    #[test]
    fn capacity_and_rate_scale_with_data_disks() {
        let d = DiskParams::default();
        let a = array();
        assert_eq!(
            a.capacity(),
            d.capacity * RaidParams::default().data_disks as u64
        );
    }

    #[test]
    fn invalid_params_are_typed_errors() {
        let bad_disks = RaidParams {
            data_disks: 0,
            degraded_read_penalty: 1.3,
        };
        assert!(matches!(
            Raid3::try_new(DiskParams::default(), bad_disks, 1),
            Err(RaidError::InvalidParams { .. })
        ));
        let bad_penalty = RaidParams {
            data_disks: 4,
            degraded_read_penalty: 0.5,
        };
        assert!(matches!(
            Raid3::try_new(DiskParams::default(), bad_penalty, 1),
            Err(RaidError::InvalidParams { .. })
        ));
        let nan_penalty = RaidParams {
            data_disks: 4,
            degraded_read_penalty: f64::NAN,
        };
        assert!(nan_penalty.validate().is_err());
    }

    #[test]
    fn degraded_reads_slower_healthy_writes_unchanged() {
        let mut healthy = array();
        let mut degraded = array();
        degraded.fail_disk(0).unwrap();
        assert!(degraded.degraded());
        let mut hr = 0u64;
        let mut dr = 0u64;
        let mut hw = 0u64;
        let mut dw = 0u64;
        for i in 0..40u64 {
            let off = ((i * 131) % 4000) << 20;
            hr += healthy.read(off, 65536).nanos();
            dr += degraded.read(off, 65536).nanos();
            hw += healthy.write(off, 65536).nanos();
            dw += degraded.write(off, 65536).nanos();
        }
        assert!(dr > hr, "degraded reads must cost more");
        assert_eq!(dw, hw, "RAID-3 writes are unaffected by a failed member");
    }

    #[test]
    fn parity_disk_failure_does_not_slow_reads() {
        let mut a = array();
        let mut b = array();
        b.fail_disk(RaidParams::default().data_disks).unwrap(); // parity member
        for i in 0..20u64 {
            let off = ((i * 977) % 1000) << 20;
            assert_eq!(a.read(off, 4096), b.read(off, 4096));
        }
    }

    #[test]
    fn second_failure_is_a_typed_error_not_a_panic() {
        let mut a = array();
        a.fail_disk(0).unwrap();
        assert_eq!(
            a.fail_disk(1),
            Err(RaidError::DoubleFailure {
                already_failed: 0,
                index: 1
            })
        );
        // State unchanged: still singly degraded, no data loss until the
        // caller says so.
        assert!(a.degraded());
        assert!(!a.data_lost());
        a.mark_data_lost();
        assert!(a.data_lost());
    }

    #[test]
    fn out_of_range_index_is_rejected() {
        let mut a = array();
        let max = RaidParams::default().data_disks;
        assert_eq!(
            a.fail_disk(max + 1),
            Err(RaidError::DiskIndexOutOfRange {
                index: max + 1,
                max
            })
        );
        assert!(!a.degraded());
    }

    #[test]
    fn rebuild_is_timed_and_restores_full_speed() {
        let mut a = array();
        a.fail_disk(1).unwrap();
        assert_eq!(a.start_rebuild(), Ok(()));
        let member = DiskParams::default().capacity;
        assert_eq!(a.rebuild_remaining(), member);

        // Drain the rebuild in 64 MB chunks: the array must stay degraded
        // until the *last* chunk completes, and total rebuild time must be
        // the member capacity at single-spindle rate.
        let chunk = 64 << 20;
        let mut total = SimDuration::ZERO;
        while let Some((bytes, dt)) = a.rebuild_take_chunk(chunk) {
            assert!(bytes <= chunk);
            total += dt;
            a.rebuild_chunk_done();
            if a.rebuild_remaining() > 0 {
                assert!(a.degraded(), "degraded until rebuild finishes");
            }
        }
        assert!(!a.degraded(), "rebuild completion clears the failure");
        let expect = member as f64 / DiskParams::default().transfer_rate;
        let got = total.as_secs_f64();
        assert!(
            (got - expect).abs() / expect < 1e-6,
            "rebuild time {got}s != member capacity at spindle rate {expect}s"
        );
    }

    #[test]
    fn rebuild_on_healthy_array_is_an_error() {
        let mut a = array();
        assert_eq!(a.start_rebuild(), Err(RaidError::NotDegraded));
    }

    #[test]
    fn aborted_chunk_returns_to_pool() {
        let mut a = array();
        a.fail_disk(0).unwrap();
        a.start_rebuild().unwrap();
        let before = a.rebuild_remaining();
        let (bytes, _) = a.rebuild_take_chunk(1 << 20).unwrap();
        a.rebuild_abort_chunk(bytes);
        assert_eq!(a.rebuild_remaining(), before);
    }

    #[test]
    fn xor_reconstruction_recovers_lost_block() {
        let d0 = [1u8, 2, 3, 4];
        let d1 = [9u8, 9, 9, 9];
        let d2 = [0u8, 255, 0, 255];
        let d3 = [7u8, 0, 7, 0];
        let p = Raid3::parity(&[&d0, &d1, &d2, &d3]);
        // Lose d2; reconstruct from the rest + parity.
        let rebuilt = Raid3::reconstruct(&[&d0, &d1, &d3, &p]);
        assert_eq!(rebuilt, d2.to_vec());
    }

    #[test]
    fn parity_of_empty_is_empty() {
        assert!(Raid3::parity(&[]).is_empty());
    }
}

//! Node programs: the execution model for simulated applications.
//!
//! A [`NodeProgram`] is a resumable state machine running on one compute
//! node. Each time the node is runnable, the engine calls
//! [`NodeProgram::step`] with a [`Resume`] describing why the node woke up,
//! and the program answers with its next [`Step`]: compute for a while, issue
//! an I/O call, enter a barrier, send or receive a message, join a broadcast,
//! or finish.
//!
//! Most application skeletons in `sio-apps` don't implement the trait by
//! hand: they build a [`ScriptProgram`] — a precomputed list of [`ScriptOp`]s
//! with automatic bookkeeping for asynchronous-I/O tokens.

use crate::time::SimDuration;
use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier of a node group used for barriers and collectives. Group 0 is
/// always "all compute nodes"; applications may register more (RENDER uses a
/// renderer group that excludes the gateway node).
pub type GroupId = u32;

/// Identifier of an outstanding asynchronous I/O operation.
pub type IoToken = u64;

/// The file-system verbs a node can invoke. Interpretation (pointer
/// semantics, striping, coordination) belongs to the attached
/// [`crate::engine::IoService`] — the engine only routes requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoVerb {
    /// Open (or create) a registered file. `hint` carries the service's
    /// access-mode code.
    Open,
    /// Close the file.
    Close,
    /// Read `bytes` at the position implied by the service's pointer
    /// semantics (or at `offset` if supplied).
    Read,
    /// Write `bytes`, likewise.
    Write,
    /// Move this node's file pointer to `offset`.
    Seek,
    /// Flush buffered data (Fortran `forflush`).
    Flush,
    /// Query file size (`lsize`).
    Lsize,
    /// Commit: make the file's data durable. Unlike `Flush`, a `Sync`
    /// acknowledges only once every outstanding write for the file has
    /// reached a healthy disk array — the primitive checkpoint commits
    /// are built on.
    Sync,
}

/// One file-system call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// File identifier (registered with the service before the run).
    pub file: u32,
    /// Operation.
    pub verb: IoVerb,
    /// Explicit offset: required for `Seek`; optional for reads/writes
    /// (`None` = use the file-pointer semantics of the service's access
    /// mode, which is how the paper's applications operate).
    pub offset: Option<u64>,
    /// Byte count for data operations.
    pub bytes: u64,
    /// Service-specific hint (access mode at open; 0 otherwise).
    pub hint: u32,
}

impl IoRequest {
    /// Open `file` with a service-specific mode code.
    pub fn open(file: u32, mode: u32) -> IoRequest {
        IoRequest {
            file,
            verb: IoVerb::Open,
            offset: None,
            bytes: 0,
            hint: mode,
        }
    }

    /// Close `file`.
    pub fn close(file: u32) -> IoRequest {
        IoRequest {
            file,
            verb: IoVerb::Close,
            offset: None,
            bytes: 0,
            hint: 0,
        }
    }

    /// Read `bytes` at the current pointer.
    pub fn read(file: u32, bytes: u64) -> IoRequest {
        IoRequest {
            file,
            verb: IoVerb::Read,
            offset: None,
            bytes,
            hint: 0,
        }
    }

    /// Write `bytes` at the current pointer.
    pub fn write(file: u32, bytes: u64) -> IoRequest {
        IoRequest {
            file,
            verb: IoVerb::Write,
            offset: None,
            bytes,
            hint: 0,
        }
    }

    /// Seek to `offset`.
    pub fn seek(file: u32, offset: u64) -> IoRequest {
        IoRequest {
            file,
            verb: IoVerb::Seek,
            offset: Some(offset),
            bytes: 0,
            hint: 0,
        }
    }

    /// Flush buffered writes.
    pub fn flush(file: u32) -> IoRequest {
        IoRequest {
            file,
            verb: IoVerb::Flush,
            offset: None,
            bytes: 0,
            hint: 0,
        }
    }

    /// Commit `file` to durable storage (wait out in-flight writes and
    /// write-behind buffers).
    pub fn sync(file: u32) -> IoRequest {
        IoRequest {
            file,
            verb: IoVerb::Sync,
            offset: None,
            bytes: 0,
            hint: 0,
        }
    }

    /// Query file size.
    pub fn lsize(file: u32) -> IoRequest {
        IoRequest {
            file,
            verb: IoVerb::Lsize,
            offset: None,
            bytes: 0,
            hint: 0,
        }
    }
}

/// Completion information for an I/O call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoResult {
    /// Bytes actually moved.
    pub bytes: u64,
    /// Time the request spent queued behind other requests.
    pub queued: SimDuration,
    /// Time the request spent in service (disk + transfer + software).
    pub service: SimDuration,
    /// `Some` when the request failed (faulted hardware); `bytes` then
    /// reflects what was actually moved (usually 0).
    pub fault: Option<IoFault>,
}

/// Why an I/O call failed. Programs receive this through
/// [`Resume::IoDone`] / [`Resume::IoWaited`] instead of a panic, so a
/// degraded run keeps its deterministic schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Redundancy exhausted (e.g. second RAID-3 member failure): the data
    /// cannot be reconstructed.
    DataLoss,
    /// The request exceeded the configured hard deadline
    /// ([`crate::calibration::FaultParams::request_timeout`]).
    Timeout,
    /// No server (primary or failover buddy) would accept the request.
    Unavailable,
}

/// Why a node was resumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// First activation at t = 0.
    Start,
    /// A `Compute` step finished.
    Computed,
    /// A blocking I/O step completed.
    IoDone(IoResult),
    /// An asynchronous I/O was issued; the token names the in-flight op.
    IoIssued(IoToken),
    /// An awaited asynchronous I/O completed.
    IoWaited(IoResult),
    /// A barrier completed.
    BarrierDone,
    /// A message was handed to the network.
    Sent,
    /// A message arrived; payload size in bytes.
    Received(u64),
    /// A broadcast collective completed on this node.
    BroadcastDone,
}

/// What a node wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Busy-compute for a duration, then resume.
    Compute(SimDuration),
    /// Blocking I/O call.
    Io(IoRequest),
    /// Non-blocking I/O call: node resumes immediately with
    /// [`Resume::IoIssued`]; completion is collected with [`Step::IoWait`].
    IoAsync(IoRequest),
    /// Block until the asynchronous operation identified by the token
    /// completes (resumes immediately if it already has).
    IoWait(IoToken),
    /// Enter a barrier across a node group.
    Barrier(GroupId),
    /// Send `bytes` to another node (eager, buffered: resumes after the send
    /// overhead, not after delivery).
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload size.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Receive a message with a matching tag (blocks until one arrives).
    Recv {
        /// Source node.
        from: NodeId,
        /// Match tag.
        tag: u32,
    },
    /// Join a broadcast over a group: the root contributes `bytes`; all
    /// group members block until the broadcast completes.
    Broadcast {
        /// Broadcast root (must be in the group).
        root: NodeId,
        /// Payload size.
        bytes: u64,
        /// Group over which the broadcast runs.
        group: GroupId,
    },
    /// Program finished; the node idles forever.
    Done,
}

/// A resumable program running on one node.
pub trait NodeProgram {
    /// Produce the next step. `node` is this node's id, `resume` explains the
    /// wake-up (and carries results).
    fn step(&mut self, node: NodeId, resume: Resume) -> Step;
}

/// Script operations: like [`Step`] but with async-token plumbing handled by
/// [`ScriptProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptOp {
    /// Busy-compute.
    Compute(SimDuration),
    /// Blocking I/O.
    Io(IoRequest),
    /// Issue asynchronous I/O; its token is pushed on an internal FIFO.
    IoAsync(IoRequest),
    /// Wait for the *oldest* outstanding asynchronous I/O.
    WaitOldest,
    /// Wait for every outstanding asynchronous I/O (in issue order).
    WaitAll,
    /// Barrier over a group.
    Barrier(GroupId),
    /// Eager send.
    Send {
        /// Destination node.
        to: NodeId,
        /// Payload size.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Blocking receive.
    Recv {
        /// Source node.
        from: NodeId,
        /// Match tag.
        tag: u32,
    },
    /// Broadcast collective.
    Broadcast {
        /// Root node.
        root: NodeId,
        /// Payload size.
        bytes: u64,
        /// Group.
        group: GroupId,
    },
}

/// A [`NodeProgram`] that replays a precomputed operation list.
#[derive(Debug, Default)]
pub struct ScriptProgram {
    ops: VecDeque<ScriptOp>,
    outstanding: VecDeque<IoToken>,
    /// When draining a `WaitAll`, how many waits remain.
    draining: bool,
}

impl ScriptProgram {
    /// Build from an operation list.
    pub fn new(ops: Vec<ScriptOp>) -> ScriptProgram {
        ScriptProgram {
            ops: ops.into(),
            outstanding: VecDeque::new(),
            draining: false,
        }
    }

    /// Remaining (not yet issued) operations.
    pub fn remaining(&self) -> usize {
        self.ops.len()
    }
}

impl NodeProgram for ScriptProgram {
    fn step(&mut self, _node: NodeId, resume: Resume) -> Step {
        // Record tokens from async issues.
        if let Resume::IoIssued(tok) = resume {
            self.outstanding.push_back(tok);
        }
        // If we're in the middle of a WaitAll, keep draining.
        if self.draining {
            if let Some(tok) = self.outstanding.pop_front() {
                return Step::IoWait(tok);
            }
            self.draining = false;
        }
        loop {
            let Some(op) = self.ops.pop_front() else {
                return Step::Done;
            };
            return match op {
                ScriptOp::Compute(d) => Step::Compute(d),
                ScriptOp::Io(req) => Step::Io(req),
                ScriptOp::IoAsync(req) => Step::IoAsync(req),
                ScriptOp::WaitOldest => match self.outstanding.pop_front() {
                    Some(tok) => Step::IoWait(tok),
                    None => continue, // nothing outstanding: no-op
                },
                ScriptOp::WaitAll => match self.outstanding.pop_front() {
                    Some(tok) => {
                        self.draining = true;
                        Step::IoWait(tok)
                    }
                    None => continue,
                },
                ScriptOp::Barrier(g) => Step::Barrier(g),
                ScriptOp::Send { to, bytes, tag } => Step::Send { to, bytes, tag },
                ScriptOp::Recv { from, tag } => Step::Recv { from, tag },
                ScriptOp::Broadcast { root, bytes, group } => {
                    Step::Broadcast { root, bytes, group }
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builders() {
        let r = IoRequest::open(3, 2);
        assert_eq!(r.verb, IoVerb::Open);
        assert_eq!(r.hint, 2);
        assert_eq!(IoRequest::read(1, 64).bytes, 64);
        assert_eq!(IoRequest::seek(1, 4096).offset, Some(4096));
        assert_eq!(IoRequest::write(1, 8).verb, IoVerb::Write);
        assert_eq!(IoRequest::close(1).verb, IoVerb::Close);
        assert_eq!(IoRequest::flush(1).verb, IoVerb::Flush);
        assert_eq!(IoRequest::lsize(1).verb, IoVerb::Lsize);
    }

    #[test]
    fn script_replays_in_order() {
        let mut p = ScriptProgram::new(vec![
            ScriptOp::Compute(SimDuration(5)),
            ScriptOp::Io(IoRequest::read(1, 10)),
            ScriptOp::Barrier(0),
        ]);
        assert_eq!(p.remaining(), 3);
        assert!(matches!(
            p.step(0, Resume::Start),
            Step::Compute(SimDuration(5))
        ));
        assert!(matches!(p.step(0, Resume::Computed), Step::Io(_)));
        assert!(matches!(
            p.step(0, Resume::IoDone(IoResult::default())),
            Step::Barrier(0)
        ));
        assert!(matches!(p.step(0, Resume::BarrierDone), Step::Done));
        // Done is sticky.
        assert!(matches!(p.step(0, Resume::Computed), Step::Done));
    }

    #[test]
    fn script_tracks_async_tokens_fifo() {
        let mut p = ScriptProgram::new(vec![
            ScriptOp::IoAsync(IoRequest::read(1, 10)),
            ScriptOp::IoAsync(IoRequest::read(1, 20)),
            ScriptOp::WaitOldest,
            ScriptOp::WaitOldest,
        ]);
        assert!(matches!(p.step(0, Resume::Start), Step::IoAsync(_)));
        assert!(matches!(p.step(0, Resume::IoIssued(11)), Step::IoAsync(_)));
        // Waits come back in issue order.
        assert_eq!(p.step(0, Resume::IoIssued(22)), Step::IoWait(11));
        assert_eq!(
            p.step(0, Resume::IoWaited(IoResult::default())),
            Step::IoWait(22)
        );
        assert!(matches!(
            p.step(0, Resume::IoWaited(IoResult::default())),
            Step::Done
        ));
    }

    #[test]
    fn wait_all_drains_every_token() {
        let mut p = ScriptProgram::new(vec![
            ScriptOp::IoAsync(IoRequest::read(1, 1)),
            ScriptOp::IoAsync(IoRequest::read(1, 2)),
            ScriptOp::IoAsync(IoRequest::read(1, 3)),
            ScriptOp::WaitAll,
            ScriptOp::Compute(SimDuration(1)),
        ]);
        p.step(0, Resume::Start);
        p.step(0, Resume::IoIssued(1));
        p.step(0, Resume::IoIssued(2));
        assert_eq!(p.step(0, Resume::IoIssued(3)), Step::IoWait(1));
        assert_eq!(
            p.step(0, Resume::IoWaited(IoResult::default())),
            Step::IoWait(2)
        );
        assert_eq!(
            p.step(0, Resume::IoWaited(IoResult::default())),
            Step::IoWait(3)
        );
        assert!(matches!(
            p.step(0, Resume::IoWaited(IoResult::default())),
            Step::Compute(_)
        ));
    }

    #[test]
    fn wait_with_nothing_outstanding_is_noop() {
        let mut p = ScriptProgram::new(vec![
            ScriptOp::WaitOldest,
            ScriptOp::WaitAll,
            ScriptOp::Compute(SimDuration(9)),
        ]);
        // Both waits skip straight to the compute.
        assert!(matches!(
            p.step(0, Resume::Start),
            Step::Compute(SimDuration(9))
        ));
    }
}

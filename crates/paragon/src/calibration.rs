//! Calibration constants — every tunable in the machine model, with the
//! paper observation each was tuned against.
//!
//! The reproduction contract (DESIGN.md §3) is *shape, not wall-clock*:
//! operation counts and byte volumes are workload-determined and match the
//! paper's tables near-exactly; the time columns depend on these constants
//! and are tuned to land in the right regime (which operation class
//! dominates, and by roughly what factor). EXPERIMENTS.md records the
//! residual deviations.

use crate::disk::DiskParams;
use crate::mesh::CommCosts;
use crate::raid::RaidParams;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Interconnect costs for the Paragon 2-D mesh.
///
/// * message software overhead ≈ 50 µs and link bandwidth ≈ 175 MB/s are the
///   published Paragon NX figures (Berrendorf et al., the paper's ref 27);
/// * hop latency is tens of ns (wormhole routing) and barely matters;
/// * barrier stage cost reproduces sub-millisecond 128-node barriers.
pub fn comm_costs() -> CommCosts {
    CommCosts {
        sw_overhead: SimDuration::from_micros(50),
        hop_latency: SimDuration(40),
        bandwidth: 175.0e6,
        barrier_stage: SimDuration::from_micros(30),
    }
}

/// Member-disk parameters for the CCSF arrays (five 1.2 GB drives per I/O
/// node, §3.2). Early-90s commodity drive: ~2.2 MB/s sustained media rate,
/// 5400 rpm class rotation, several-ms seeks.
pub fn disk_params() -> DiskParams {
    DiskParams {
        capacity: 1_200_000_000,
        cylinder_bytes: 512 * 1024,
        seek_base: SimDuration::from_millis(6),
        seek_per_cyl: SimDuration::from_micros(4),
        revolution: SimDuration::from_millis(11), // 5455 rpm
        transfer_rate: 2.2e6,
    }
}

/// RAID-3 geometry: 4 data + 1 parity (the fifth drive), byte-striped and
/// spindle-synchronized, so the array moves data at 4 × 2.2 ≈ 8.8 MB/s.
/// Degraded reads pay a 30 % reconstruction penalty (XOR pipeline).
pub fn raid_params() -> RaidParams {
    RaidParams {
        data_disks: 4,
        degraded_read_penalty: 1.3,
    }
}

/// File-system software path costs (OSF/1 + PFS servers).
///
/// Calibration targets, all from the paper's tables:
///
/// | constant            | tuned against |
/// |---------------------|---------------|
/// | `async_issue`       | Table 3: 436 async reads cost 4.60 s to issue → ≈ 10.5 ms each |
/// | `seek_shared_rpc`   | Table 1: 12,034 ESCAT seeks (128-node bursts on a shared file) average 1.74 s → ≈ 25 ms serialized service |
/// | `seek_local`        | Table 5 (pscf): 813 seeks on per-node private files total 1.67 s → ≈ 2 ms |
/// | `create` / `open`   | Table 5 (pargos): 130 opens, mostly 128 simultaneous creates, total 4,057 s; Table 3: ~100 sequential creates total 32.8 s; Table 1: 262 opens (two 128-node bursts) total 1,179 s |
/// | `close`             | Tables 1/3/5: 50–90 ms uncontended |
/// | `flush`             | Table 5 (pargos): 8,657 forflush calls total 317.7 s → ≈ 37 ms |
/// | `lsize`             | Table 5 (pargos): 128 calls total 15.3 s → ≈ 120 ms incl. queueing |
/// | `server_per_request`| Table 1: 2 KB synchronized writes average ~1.2 s incl. queueing; per-segment server CPU ≈ 20 ms puts the burst regime in range |
/// | `client_byte_rate`  | §6.2: gateway sequential read throughput ≈ 9.5 MB/s despite a ~140 MB/s array aggregate — the client copy path is the limiter |
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IoSwCosts {
    /// Cost to issue an asynchronous operation (client side).
    pub async_issue: SimDuration,
    /// Service time of a seek RPC on a file opened by multiple nodes
    /// (serialized at the file's metadata owner).
    pub seek_shared_rpc: SimDuration,
    /// Local seek on a file with a single opener.
    pub seek_local: SimDuration,
    /// Metadata service time to create a file.
    pub create: SimDuration,
    /// Metadata service time to open an existing file.
    pub open: SimDuration,
    /// Metadata service time to close.
    pub close: SimDuration,
    /// Serialization cost of an atomicity-preserving write to a file opened
    /// by multiple nodes (M_UNIX keeps operation atomicity, so concurrent
    /// writers serialize at the file's metadata owner; M_ASYNC skips this).
    /// Tuned against Table 1: 13,330 ESCAT writes totaling 16,268 s.
    pub atomic_write_rpc: SimDuration,
    /// Runtime buffer flush.
    pub flush: SimDuration,
    /// File-size query (metadata service).
    pub lsize: SimDuration,
    /// Server CPU cost charged per stripe-segment request at an I/O node.
    pub server_per_request: SimDuration,
    /// Client-side copy/packetization rate, bytes/second; serialized at the
    /// requesting node and added to every data operation.
    pub client_byte_rate: f64,
    /// Shared-file-pointer token acquisition (M_LOG, M_SYNC, M_GLOBAL).
    pub pointer_token: SimDuration,
}

/// Fault-handling and recovery parameters.
///
/// Calibration rationale:
///
/// * `rebuild_chunk` — 2 MB of the failed *member* per background chunk:
///   ≈ 0.9 s of spindle time at the 2.2 MB/s media rate, long enough to
///   amortize the per-request server cost, short enough that foreground
///   segments queued behind a chunk see sub-second added latency. A full
///   1.2 GB member rebuilds in ≈ 545 s of idle disk time — the same order
///   as RAID rebuild times reported for arrays of this vintage.
/// * `retry_base` / `max_retries` — exponential backoff 50, 100, 200, 400,
///   800 ms; a crashed node is declared unreachable after ≈ 1.6 s and its
///   segments fail over, so a long outage costs seconds, not the outage.
/// * `request_timeout` — hard liveness bound per file-system request; far
///   above any legitimate queueing delay observed in the paper-scale runs
///   (worst bursts are tens of seconds), so it only fires when a fault
///   leaves a request truly stuck.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FaultParams {
    /// Member bytes serviced per background rebuild chunk.
    pub rebuild_chunk: u64,
    /// First retry delay; attempt `k` waits `retry_base × 2^(k-1)`.
    pub retry_base: SimDuration,
    /// Retries against one node before failing over to its buddy.
    pub max_retries: u32,
    /// Hard deadline for a file-system request once faults are in play.
    pub request_timeout: SimDuration,
}

impl Default for FaultParams {
    fn default() -> Self {
        fault_params()
    }
}

/// Fault-handling calibration (see the struct docs).
pub fn fault_params() -> FaultParams {
    FaultParams {
        rebuild_chunk: 2 << 20,
        retry_base: SimDuration::from_millis(50),
        max_retries: 5,
        request_timeout: SimDuration::from_secs_f64(600.0),
    }
}

/// Local burst-log device parameters (the host-side log-structured tier,
/// `sio-blog`).
///
/// Calibration rationale — the tier models a node-local append device of
/// the Paragon era (a dedicated spindle partition or battery-backed buffer
/// card) that commits sequentially, with no seek, no RPC serialization, and
/// no server queueing:
///
/// * `append_latency` — fixed per-record commit latency (DMA setup + frame
///   checksum): ~500 µs, two orders below the PFS software path for a
///   checkpoint record (`seek_shared_rpc` + `atomic_write_rpc` + queueing).
/// * `append_rate` — sustained sequential append bandwidth, ~30 MB/s: a
///   striped local pair outruns one 8.8 MB/s shared RAID-3 array but stays
///   far below memory speed, so log capacity still matters.
/// * `frame_bytes` — per-record framing overhead (magic, epoch, extent,
///   checksum) charged against log capacity, mirroring the on-log layout
///   used by the byte-level recovery model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogDeviceParams {
    /// Fixed commit latency per appended record.
    pub append_latency: SimDuration,
    /// Sustained sequential append bandwidth, bytes/second.
    pub append_rate: f64,
    /// Framing overhead charged per record against log capacity.
    pub frame_bytes: u64,
}

impl Default for LogDeviceParams {
    fn default() -> Self {
        log_device_params()
    }
}

/// Burst-log device calibration (see the struct docs).
pub fn log_device_params() -> LogDeviceParams {
    LogDeviceParams {
        append_latency: SimDuration::from_micros(500),
        append_rate: 30.0e6,
        frame_bytes: 64,
    }
}

/// Software-path calibration (see the table in the struct docs).
pub fn io_sw_costs() -> IoSwCosts {
    IoSwCosts {
        async_issue: SimDuration::from_micros(10_500),
        seek_shared_rpc: SimDuration::from_millis(30),
        seek_local: SimDuration::from_millis(2),
        create: SimDuration::from_millis(350),
        open: SimDuration::from_millis(60),
        close: SimDuration::from_millis(15),
        atomic_write_rpc: SimDuration::from_millis(12),
        flush: SimDuration::from_millis(35),
        lsize: SimDuration::from_millis(60),
        server_per_request: SimDuration::from_millis(20),
        client_byte_rate: 10.5e6,
        pointer_token: SimDuration::from_millis(5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_issue_matches_table3() {
        // 436 issues at this cost must land near the paper's 4.60 s.
        let total = io_sw_costs().async_issue.times(436).as_secs_f64();
        assert!((total - 4.6).abs() < 0.5, "got {total}");
    }

    #[test]
    fn array_rate_is_4x_member_rate() {
        let d = disk_params();
        let r = raid_params();
        assert_eq!(r.data_disks, 4);
        assert!((d.transfer_rate * r.data_disks as f64 - 8.8e6).abs() < 1.0);
    }

    #[test]
    fn local_seeks_match_pscf() {
        // 813 local seeks should land near the paper's 1.67 s.
        let total = io_sw_costs().seek_local.times(813).as_secs_f64();
        assert!((total - 1.67).abs() < 0.5, "got {total}");
    }

    #[test]
    fn flush_matches_pargos() {
        let total = io_sw_costs().flush.times(8657).as_secs_f64();
        assert!((total - 317.7).abs() < 30.0, "got {total}");
    }
}

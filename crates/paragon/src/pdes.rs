//! Intra-run PDES: a region-sharded front end over the lane-based engine.
//!
//! [`ShardedEngine`] partitions the compute nodes into contiguous mesh
//! regions ([`Mesh::region_partition`]) and runs the simulation as a
//! synchronous-window conservative PDES:
//!
//! 1. **Window.** Each round starts at the global event floor `F` (the
//!    earliest queued event anywhere) and extends to `H = F + L`, where
//!    `L` is the conservative lookahead [`Mesh::region_lookahead`] — the
//!    minimum simulated time any region needs to influence another
//!    (cheapest cross-region message, barrier release, or broadcast
//!    stage).
//! 2. **Pre-step (parallel).** Every shard walks its pending node-resume
//!    events inside `[F, H)` and *chains* the program transitions for
//!    them on its own worker: it keeps stepping a node while the step is
//!    a `Compute` landing below the horizon, memoizing every [`Step`]
//!    and recording the chain shape as a
//!    `NodeChain`. This is conservative, not
//!    optimistic: a node has at most one resume in flight, a computing
//!    node blocks on nothing, and its program state and resume payloads
//!    are sealed until the events are popped — so every pre-computed
//!    transition is guaranteed to commit and there is no rollback path.
//! 3. **Commit.** Two cases, decided per window:
//!    * **Closed window, batch commit.** When every queued event below
//!      the horizon is a node resume (no I/O completion or service
//!      timer — the *purity* check) and every chain ends inside its own
//!      region (`BeyondHorizon` or `Done`, never a boundary step), the
//!      window's entire effect is already determined. A cheap
//!      merge-simulation (`Engine::plan_closed_window`) replays the pop
//!      order arithmetically, pre-assigning the exact sequence numbers
//!      the serial engine would have assigned, and the per-region event
//!      lanes are then spliced in one batch — in parallel, since shard
//!      state is disjoint. Resumes created and consumed inside the
//!      window never touch a heap at all.
//!    * **Boundary window, serial commit.** Otherwise the coordinator
//!      pumps the engine through the window in exact global
//!      `(time, seq)` order, exactly as the serial engine would; program
//!      transitions hit the per-shard memo queues instead of
//!      re-running. Service models (I/O-node queues, disks, RAID
//!      rebuild), messages, collectives, and timer dispatch — the
//!      cross-shard traffic — only ever run here.
//!
//! Both paths replicate the serial engine's event order and sequence
//! numbering exactly, so traces, reports, and [`EnginePerf`] counters are
//! **byte-identical to the serial engine by construction** for every shard
//! count — the golden-digest suites hold at `--shards 1`, `2`, and `8`
//! without a separate merge step, and `repro --perf` stays
//! shard-invariant. The timer-id contract needed by `fskit` (service
//! timer ids are allocated and fired in serial commit order) is preserved
//! because service code only ever runs in the serial commit path.
//!
//! Scaling now has two levers: transition-heavy programs parallelize in
//! the pre-step phase (PR 9), and replay/script workloads — whose windows
//! are almost all closed — skip the serial pop/dispatch/push loop
//! entirely in the batch commit. Cross-region traffic (messages,
//! collectives, every service interaction) still serializes; DESIGN.md §8
//! classifies what is shard-owned versus boundary. The worker pool sizes
//! itself to `min(shards, cores)`; `SIO_PDES_THREADS` overrides it
//! (useful to exercise the threaded path on small hosts).

use crate::engine::{ChainEnd, Engine, EnginePerf, EngineReport, IoService, NodeChain};
use crate::mesh::{CommCosts, Mesh};
use crate::program::{GroupId, NodeProgram, Resume, Step};
use crate::time::{SimDuration, SimTime};
use crate::NodeId;
use std::collections::VecDeque;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-wide shard-count knob, fed by `--shards N` on the `repro`
/// binary or the `SIO_SHARDS` environment variable (same contract as the
/// sweep-level `SIO_JOBS` knob in `analysis::runner`).
static CONFIGURED_SHARDS: AtomicU32 = AtomicU32::new(0);

/// Typed parse failure for the PDES environment knobs (`SIO_SHARDS`,
/// `SIO_PDES_THREADS`) — the same shape as the `repro` CLI's option errors,
/// so a bad knob produces one explicit, greppable line instead of a silent
/// fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvKnobError {
    /// The environment variable that failed to parse.
    pub var: &'static str,
    /// The rejected raw value.
    pub got: String,
}

impl fmt::Display for EnvKnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid value {:?} for {}: expected a positive integer",
            self.got, self.var
        )
    }
}

impl std::error::Error for EnvKnobError {}

/// Parse one PDES knob: a positive integer, with `0`, signs, and
/// non-numeric input all rejected as typed errors.
fn parse_knob(var: &'static str, raw: &str) -> Result<u64, EnvKnobError> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(EnvKnobError {
            var,
            got: raw.to_string(),
        }),
    }
}

/// Shard count from a raw `SIO_SHARDS` value (`None` = unset → 1, the
/// serial engine). Split from the environment read so the rejection rules
/// are unit-testable without touching process state.
fn shards_from(raw: Option<&str>) -> Result<u32, EnvKnobError> {
    match raw {
        None => Ok(1),
        Some(v) => parse_knob("SIO_SHARDS", v).map(|n| u32::try_from(n).unwrap_or(u32::MAX)),
    }
}

/// Worker-pool size from a raw `SIO_PDES_THREADS` value (`None` = unset →
/// the host's available parallelism).
fn threads_from(raw: Option<&str>) -> Result<usize, EnvKnobError> {
    match raw {
        None => Ok(std::thread::available_parallelism().map_or(1, |n| n.get())),
        Some(v) => {
            parse_knob("SIO_PDES_THREADS", v).map(|n| usize::try_from(n).unwrap_or(usize::MAX))
        }
    }
}

/// Default shard count: `SIO_SHARDS` if set to a positive integer, else 1
/// (the serial engine). An invalid value warns (typed [`EnvKnobError`])
/// and runs serial rather than silently guessing.
pub fn default_shards() -> u32 {
    match shards_from(std::env::var("SIO_SHARDS").ok().as_deref()) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("[pdes] {e}; running serial (1 shard)");
            1
        }
    }
}

/// Set the process-wide shard count; `0` clears the override back to
/// [`default_shards`].
pub fn set_shards(shards: u32) {
    CONFIGURED_SHARDS.store(shards, Ordering::Relaxed);
}

/// The effective shard count: the [`set_shards`] override, else
/// [`default_shards`].
pub fn configured_shards() -> u32 {
    match CONFIGURED_SHARDS.load(Ordering::Relaxed) {
        0 => default_shards(),
        n => n,
    }
}

/// Chain-length backstop: a program livelocked on zero-length `Compute`
/// steps would otherwise chain forever inside one window (the serial
/// engine's `MAX_EVENTS` backstop only counts *committed* events). A
/// truncated chain is classified as a boundary chain, so the window falls
/// back to the serial commit path and the backstop applies.
const MAX_CHAIN: usize = 4096;

/// One region's share of the simulation: the real node programs and the
/// per-node memo queues of pre-stepped transitions. Owned behind a mutex
/// that is only ever contended *between* phases (workers hold it during
/// pre-step, the coordinator's proxies during serial commit), never within
/// one.
struct ShardState {
    /// First node id in this region (nodes are contiguous).
    start: NodeId,
    programs: Vec<Box<dyn NodeProgram + Send>>,
    /// Pre-stepped transition chain per node, consumed front-to-back by
    /// the commit phase (one entry per in-window resume of that node).
    memo: Vec<VecDeque<Step>>,
}

impl ShardState {
    /// Pre-step a batch of sealed pending resumes, walking each node's
    /// compute chain up to the window horizon and memoizing every
    /// transition for the commit phase. Appends one [`NodeChain`] per
    /// batch entry describing the chain's shape for the window planner.
    fn prestep(
        &mut self,
        batch: &[(SimTime, u64, NodeId, Resume)],
        horizon: SimTime,
        out: &mut Vec<NodeChain>,
    ) {
        for &(t0, seq0, node, resume) in batch {
            let i = (node - self.start) as usize;
            debug_assert!(self.memo[i].is_empty(), "node {node} pre-stepped twice");
            let mut t = t0;
            let mut resume = resume;
            let mut computes = Vec::new();
            let end = loop {
                let step = self.programs[i].step(node, resume);
                match step {
                    Step::Compute(d) => {
                        self.memo[i].push_back(step);
                        computes.push(d);
                        t += d;
                        if t >= horizon {
                            break ChainEnd::BeyondHorizon;
                        }
                        if computes.len() >= MAX_CHAIN {
                            break ChainEnd::Boundary;
                        }
                        resume = Resume::Computed;
                    }
                    Step::Done => {
                        self.memo[i].push_back(step);
                        break ChainEnd::Done;
                    }
                    other => {
                        self.memo[i].push_back(other);
                        break ChainEnd::Boundary;
                    }
                }
            };
            out.push(NodeChain {
                node,
                t0,
                seq0,
                computes,
                end,
            });
        }
    }
}

/// The per-node program the inner serial engine sees: consumes the memo
/// queue filled by the pre-step phase front-to-back (one entry per
/// resume), falling back to stepping the real program inline for
/// transitions created mid-window.
struct ShardProxy {
    shard: Arc<Mutex<ShardState>>,
}

impl NodeProgram for ShardProxy {
    fn step(&mut self, node: NodeId, resume: Resume) -> Step {
        let mut shard = self.shard.lock().expect("shard state poisoned");
        let i = (node - shard.start) as usize;
        match shard.memo[i].pop_front() {
            Some(step) => step,
            None => shard.programs[i].step(node, resume),
        }
    }
}

/// Worker-pool size: `SIO_PDES_THREADS` if set to a positive integer,
/// else the host's available parallelism, capped at the shard count. An
/// invalid value warns (typed [`EnvKnobError`]) and runs one worker.
fn default_threads(shards: usize) -> usize {
    let cores = match threads_from(std::env::var("SIO_PDES_THREADS").ok().as_deref()) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("[pdes] {e}; using 1 worker");
            1
        }
    };
    cores.min(shards).max(1)
}

/// The region-sharded engine. Construction mirrors [`Engine::new`] plus a
/// shard count; the run API ([`ShardedEngine::run`],
/// [`ShardedEngine::run_until`], watchdog, groups, perf, service access)
/// delegates to the inner lane-based engine, so reports, hang diagnoses,
/// and perf counters aggregate across shards exactly as the serial engine
/// would produce them.
pub struct ShardedEngine<S: IoService> {
    inner: Engine<S>,
    shards: Vec<Arc<Mutex<ShardState>>>,
    regions: Vec<Range<NodeId>>,
    lookahead: SimDuration,
    threads: usize,
    /// Host-wall nanoseconds spent in the parallel pre-step phase
    /// (chaining transitions, splitting batches).
    prestep_ns: u64,
    /// Host-wall nanoseconds spent committing windows (batch splices and
    /// serial pumps).
    commit_ns: u64,
}

impl<S: IoService> ShardedEngine<S> {
    /// Build a sharded engine over `programs` (node `i` runs
    /// `programs[i]`), split into at most `shards` contiguous mesh
    /// regions. `shards <= 1` (or a single-node run) still works — the
    /// window loop simply never fans out.
    pub fn new(
        mesh: Mesh,
        comm: CommCosts,
        programs: Vec<Box<dyn NodeProgram + Send>>,
        service: S,
        shards: u32,
    ) -> ShardedEngine<S> {
        let n = programs.len() as u32;
        let regions = Mesh::region_partition(n, shards);
        let lookahead = mesh.region_lookahead(&comm, &regions);
        assert!(
            lookahead > SimDuration::ZERO,
            "sharded engine requires nonzero comm costs for lookahead"
        );
        let mut progs = programs.into_iter();
        let mut shard_arcs = Vec::with_capacity(regions.len());
        let mut proxies: Vec<Box<dyn NodeProgram>> = Vec::with_capacity(n as usize);
        for r in &regions {
            let len = (r.end - r.start) as usize;
            let state = ShardState {
                start: r.start,
                programs: progs.by_ref().take(len).collect(),
                memo: std::iter::repeat_with(VecDeque::new).take(len).collect(),
            };
            let arc = Arc::new(Mutex::new(state));
            for _ in 0..len {
                proxies.push(Box::new(ShardProxy { shard: arc.clone() }));
            }
            shard_arcs.push(arc);
        }
        let threads = default_threads(shard_arcs.len());
        let mut inner = Engine::new(mesh, comm, proxies, service);
        inner.configure_lanes(&regions);
        ShardedEngine {
            inner,
            shards: shard_arcs,
            regions,
            lookahead,
            threads,
            prestep_ns: 0,
            commit_ns: 0,
        }
    }

    /// Number of non-empty shards actually formed.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative lookahead bounding each synchronization window.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Host-wall nanoseconds spent in the two engine phases so far:
    /// `(pre_step, commit)`. Wall shares are the one output that is *not*
    /// shard-count-invariant (that is the point of measuring them); they
    /// feed `repro --perf` through `sio_core::perf::phase_ns` and never
    /// touch [`EnginePerf`], which stays deterministic.
    pub fn phase_wall_ns(&self) -> (u64, u64) {
        (self.prestep_ns, self.commit_ns)
    }

    /// Override the worker-pool size (tests use this to force the threaded
    /// path on small hosts deterministically).
    #[doc(hidden)]
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// See [`Engine::set_watchdog`].
    pub fn set_watchdog(&mut self, deadline: SimTime) {
        self.inner.set_watchdog(deadline);
    }

    /// See [`Engine::set_default_watchdog`].
    pub fn set_default_watchdog(&mut self) {
        self.inner.set_default_watchdog();
    }

    /// See [`Engine::add_group`].
    pub fn add_group(&mut self, nodes: Vec<NodeId>) -> GroupId {
        self.inner.add_group(nodes)
    }

    /// See [`Engine::perf`]. Shard-count-invariant by construction.
    pub fn perf(&self) -> EnginePerf {
        self.inner.perf()
    }

    /// See [`Engine::service`].
    pub fn service(&self) -> &S {
        self.inner.service()
    }

    /// See [`Engine::service_mut`].
    pub fn service_mut(&mut self) -> &mut S {
        self.inner.service_mut()
    }

    /// Consume the engine, returning the service.
    pub fn into_service(self) -> S {
        self.inner.into_service()
    }

    /// Run to completion. See [`Engine::run`].
    pub fn run(&mut self) -> EngineReport {
        self.run_until(SimTime(u64::MAX))
    }

    /// Run until the event queue drains or simulated time would pass
    /// `stop` (crash cut). See [`Engine::run_until`] — the report is
    /// identical to the serial engine's.
    pub fn run_until(&mut self, stop: SimTime) -> EngineReport {
        self.inner.begin_run();
        if self.threads <= 1 || self.shards.len() <= 1 {
            self.drive_inline(stop);
        } else {
            self.drive_threaded(stop);
        }
        self.inner.finish_run()
    }

    /// Map a node id to its shard index (regions are contiguous and
    /// sorted, and there are at most a handful of them).
    fn shard_of(regions: &[Range<NodeId>], node: NodeId) -> usize {
        regions
            .iter()
            .position(|r| r.contains(&node))
            .expect("node outside every region")
    }

    /// Commit one pre-stepped window. A *closed* window — pure (only node
    /// resumes below the horizon), every chain region-internal, and the
    /// horizon clear of both the crash cut and the watchdog deadline — is
    /// applied as one batched lane splice. Anything else falls back to the
    /// serial pump, which consumes the same memo queues in exact global
    /// order. Returns `true` when the run is over.
    #[allow(clippy::too_many_arguments)]
    fn commit_chains(
        inner: &mut Engine<S>,
        shards: &[Arc<Mutex<ShardState>>],
        regions: &[Range<NodeId>],
        threads: usize,
        horizon: SimTime,
        stop: SimTime,
        pure: bool,
        chains: &[NodeChain],
    ) -> bool {
        let closed = pure
            && !chains.is_empty()
            && chains.iter().all(|c| c.end != ChainEnd::Boundary)
            && horizon <= stop
            && inner.watchdog_deadline().is_none_or(|d| horizon <= d);
        if !closed {
            return inner.pump(Some(horizon), stop);
        }
        let plan = inner.plan_closed_window(chains, horizon);
        inner.apply_closed_window(&plan, threads);
        // The plan consumed every memoized step; clear the chains' memos so
        // the next window's pre-step starts from clean queues.
        for c in chains {
            let s = Self::shard_of(regions, c.node);
            let mut shard = shards[s].lock().expect("shard state poisoned");
            let i = (c.node - shard.start) as usize;
            shard.memo[i].clear();
        }
        false
    }

    /// Single-threaded window loop: same windows, same chain machinery, no
    /// fan-out. Used when only one worker would exist anyway; results are
    /// identical to the threaded path by construction.
    fn drive_inline(&mut self, stop: SimTime) {
        let mut pending = Vec::new();
        let mut chains: Vec<NodeChain> = Vec::new();
        while let Some(f) = self.inner.next_event_time() {
            if f > stop {
                break;
            }
            let horizon = SimTime(f.0.saturating_add(self.lookahead.0));
            let t_pre = Instant::now();
            pending.clear();
            chains.clear();
            let pure = self.inner.pending_resumes_below(horizon, &mut pending);
            if !pending.is_empty() {
                let mut batches = vec![Vec::new(); self.shards.len()];
                for &entry in &pending {
                    batches[Self::shard_of(&self.regions, entry.2)].push(entry);
                }
                for (s, batch) in batches.iter().enumerate() {
                    if !batch.is_empty() {
                        self.shards[s]
                            .lock()
                            .expect("shard state poisoned")
                            .prestep(batch, horizon, &mut chains);
                    }
                }
            }
            self.prestep_ns += t_pre.elapsed().as_nanos() as u64;
            let t_commit = Instant::now();
            let over = Self::commit_chains(
                &mut self.inner,
                &self.shards,
                &self.regions,
                self.threads,
                horizon,
                stop,
                pure,
                &chains,
            );
            self.commit_ns += t_commit.elapsed().as_nanos() as u64;
            if over {
                break;
            }
        }
    }

    /// Threaded window loop: persistent workers (round-robin over shards)
    /// pre-step each window's batches in parallel and hand the resulting
    /// chains back; the coordinator then commits the window — batched for
    /// closed windows, serial otherwise.
    fn drive_threaded(&mut self, stop: SimTime) {
        let threads = self.threads.min(self.shards.len());
        // Per-worker job channels; one shared ack channel. A job is one
        // shard's batch for the current window; the ack carries the chains.
        let (ack_tx, ack_rx) = mpsc::channel::<Vec<NodeChain>>();
        let mut job_txs = Vec::with_capacity(threads);
        let mut job_rxs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<(usize, Vec<(SimTime, u64, NodeId, Resume)>, SimTime)>();
            job_txs.push(tx);
            job_rxs.push(rx);
        }
        let shards = &self.shards;
        let regions = &self.regions;
        let inner = &mut self.inner;
        let lookahead = self.lookahead;
        let mut prestep_ns = 0u64;
        let mut commit_ns = 0u64;
        std::thread::scope(|scope| {
            for rx in job_rxs {
                let ack = ack_tx.clone();
                let shards = &*shards;
                scope.spawn(move || {
                    while let Ok((s, batch, horizon)) = rx.recv() {
                        let mut chains = Vec::with_capacity(batch.len());
                        shards[s].lock().expect("shard state poisoned").prestep(
                            &batch,
                            horizon,
                            &mut chains,
                        );
                        if ack.send(chains).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(ack_tx);
            let mut pending = Vec::new();
            let mut chains: Vec<NodeChain> = Vec::new();
            while let Some(f) = inner.next_event_time() {
                if f > stop {
                    break;
                }
                let horizon = SimTime(f.0.saturating_add(lookahead.0));
                let t_pre = Instant::now();
                pending.clear();
                chains.clear();
                let pure = inner.pending_resumes_below(horizon, &mut pending);
                if !pending.is_empty() {
                    let mut batches = vec![Vec::new(); shards.len()];
                    for &entry in &pending {
                        batches[Self::shard_of(regions, entry.2)].push(entry);
                    }
                    let mut outstanding = 0usize;
                    for (s, batch) in batches.into_iter().enumerate() {
                        if !batch.is_empty() {
                            job_txs[s % threads]
                                .send((s, batch, horizon))
                                .expect("pre-step worker died");
                            outstanding += 1;
                        }
                    }
                    for _ in 0..outstanding {
                        chains.extend(ack_rx.recv().expect("pre-step worker died"));
                    }
                }
                prestep_ns += t_pre.elapsed().as_nanos() as u64;
                let t_commit = Instant::now();
                let over = Self::commit_chains(
                    inner, shards, regions, threads, horizon, stop, pure, &chains,
                );
                commit_ns += t_commit.elapsed().as_nanos() as u64;
                if over {
                    break;
                }
            }
            drop(job_txs);
        });
        self.prestep_ns += prestep_ns;
        self.commit_ns += commit_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{IoRequest, IoResult, IoToken, ScriptOp, ScriptProgram};
    use crate::Sched;

    /// Deterministic recording service (mirror of the serial engine's test
    /// service): fixed latency, logs submissions and iowaits.
    struct FixedService {
        latency: SimDuration,
        submitted: Vec<(NodeId, crate::program::IoVerb, SimTime)>,
        iowaits: Vec<(NodeId, SimDuration)>,
    }

    impl FixedService {
        fn new() -> FixedService {
            FixedService {
                latency: SimDuration::from_millis(1),
                submitted: Vec::new(),
                iowaits: Vec::new(),
            }
        }
    }

    impl IoService for FixedService {
        fn submit(
            &mut self,
            node: NodeId,
            now: SimTime,
            req: IoRequest,
            token: IoToken,
            _is_async: bool,
            sched: &mut Sched,
        ) {
            self.submitted.push((node, req.verb, now));
            sched.complete_io(
                token,
                now + self.latency,
                IoResult {
                    bytes: req.bytes,
                    queued: SimDuration::ZERO,
                    service: self.latency,
                    fault: None,
                },
            );
        }

        fn on_timer(&mut self, _now: SimTime, _timer: u64, _sched: &mut Sched) {}

        fn issue_cost(&self, _node: NodeId, _req: &IoRequest) -> SimDuration {
            SimDuration::from_micros(10)
        }

        fn on_iowait(&mut self, node: NodeId, _file: u32, s: SimTime, e: SimTime) {
            self.iowaits.push((node, e.since(s)));
        }
    }

    /// A mixed workload exercising every step kind: compute jitter,
    /// sync/async I/O, barriers, eager sends into blocking receives.
    fn mixed_programs(n: u32) -> Vec<Vec<ScriptOp>> {
        (0..n)
            .map(|i| {
                let mut ops = vec![
                    ScriptOp::Compute(SimDuration::from_micros(u64::from(i) * 7 + 3)),
                    ScriptOp::Io(IoRequest::read(1 + i, 4096)),
                    ScriptOp::Barrier(0),
                    ScriptOp::IoAsync(IoRequest::write(1 + i, 65536)),
                    ScriptOp::Compute(SimDuration::from_micros(40)),
                    ScriptOp::WaitOldest,
                ];
                // A ring of eager messages that crosses every region cut.
                ops.push(ScriptOp::Send {
                    to: (i + 1) % n,
                    bytes: 512,
                    tag: 9,
                });
                ops.push(ScriptOp::Recv {
                    from: (i + n - 1) % n,
                    tag: 9,
                });
                ops.push(ScriptOp::Barrier(0));
                ops
            })
            .collect()
    }

    /// A replay-shaped workload: long per-node compute chains with jittered
    /// durations, synchronized by an occasional barrier. Almost every
    /// window is closed, so this drives the batch-commit path hard.
    fn replay_programs(n: u32) -> Vec<Vec<ScriptOp>> {
        (0..n)
            .map(|i| {
                let mut ops = Vec::new();
                for k in 0..120u64 {
                    let jitter = (u64::from(i) * 2_654_435_761 + k * 40_503) % 90;
                    ops.push(ScriptOp::Compute(SimDuration::from_micros(1 + jitter)));
                    if k % 40 == 39 {
                        ops.push(ScriptOp::Barrier(0));
                    }
                }
                ops
            })
            .collect()
    }

    fn run_serial(progs: Vec<Vec<ScriptOp>>) -> (EngineReport, EnginePerf, FixedService) {
        let n = progs.len() as u32;
        let mesh = Mesh::for_nodes(n.max(2), 1);
        let programs: Vec<Box<dyn NodeProgram>> = progs
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram>)
            .collect();
        let mut e = Engine::new(mesh, CommCosts::default(), programs, FixedService::new());
        e.set_default_watchdog();
        let report = e.run();
        let perf = e.perf();
        (report, perf, e.into_service())
    }

    fn run_sharded(
        progs: Vec<Vec<ScriptOp>>,
        shards: u32,
        threads: Option<usize>,
    ) -> (EngineReport, EnginePerf, FixedService) {
        let n = progs.len() as u32;
        let mesh = Mesh::for_nodes(n.max(2), 1);
        let programs: Vec<Box<dyn NodeProgram + Send>> = progs
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>)
            .collect();
        let mut e = ShardedEngine::new(
            mesh,
            CommCosts::default(),
            programs,
            FixedService::new(),
            shards,
        );
        if let Some(t) = threads {
            e.set_threads(t);
        }
        e.set_default_watchdog();
        let report = e.run();
        let perf = e.perf();
        (report, perf, e.into_service())
    }

    #[test]
    fn sharded_matches_serial_exactly_for_every_shard_count() {
        let (sr, sp, ss) = run_serial(mixed_programs(16));
        for shards in [1, 2, 3, 8] {
            let (r, p, s) = run_sharded(mixed_programs(16), shards, None);
            assert_eq!(r, sr, "report diverged at {shards} shards");
            assert_eq!(p, sp, "perf diverged at {shards} shards");
            assert_eq!(
                s.submitted, ss.submitted,
                "I/O order diverged at {shards} shards"
            );
            assert_eq!(s.iowaits, ss.iowaits, "iowaits diverged at {shards} shards");
        }
    }

    #[test]
    fn replay_chains_batch_commit_matches_serial() {
        let (sr, sp, ss) = run_serial(replay_programs(24));
        for shards in [1, 2, 3, 8] {
            let (r, p, s) = run_sharded(replay_programs(24), shards, None);
            assert_eq!(r, sr, "report diverged at {shards} shards");
            assert_eq!(p, sp, "perf diverged at {shards} shards");
            assert_eq!(s.submitted, ss.submitted);
        }
        let (r, p, _) = run_sharded(replay_programs(24), 8, Some(3));
        assert_eq!(r, sr, "threaded batch commit diverged");
        assert_eq!(p, sp);
    }

    #[test]
    fn threaded_prestep_matches_inline() {
        let (ir, ip, is_) = run_sharded(mixed_programs(24), 8, Some(1));
        let (tr, tp, ts) = run_sharded(mixed_programs(24), 8, Some(4));
        assert_eq!(tr, ir);
        assert_eq!(tp, ip);
        assert_eq!(ts.submitted, is_.submitted);
        assert_eq!(ts.iowaits, is_.iowaits);
    }

    #[test]
    fn crash_cut_matches_serial() {
        let cut = SimTime(0) + SimDuration::from_micros(500);
        let n = 12;
        let mesh = Mesh::for_nodes(n, 1);
        let serial: Vec<Box<dyn NodeProgram>> = mixed_programs(n)
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram>)
            .collect();
        let mut se = Engine::new(mesh, CommCosts::default(), serial, FixedService::new());
        let sr = se.run_until(cut);
        let sharded: Vec<Box<dyn NodeProgram + Send>> = mixed_programs(n)
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>)
            .collect();
        let mut pe =
            ShardedEngine::new(mesh, CommCosts::default(), sharded, FixedService::new(), 4);
        let pr = pe.run_until(cut);
        assert_eq!(pr, sr);
        assert_eq!(pe.perf(), se.perf());
    }

    #[test]
    fn replay_crash_cut_matches_serial() {
        // A crash cut landing inside a batch-committable stretch must force
        // the serial fallback past the cut, not batch beyond it.
        let cut = SimTime(0) + SimDuration::from_micros(700);
        let n = 16;
        let mesh = Mesh::for_nodes(n, 1);
        let serial: Vec<Box<dyn NodeProgram>> = replay_programs(n)
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram>)
            .collect();
        let mut se = Engine::new(mesh, CommCosts::default(), serial, FixedService::new());
        let sr = se.run_until(cut);
        let sharded: Vec<Box<dyn NodeProgram + Send>> = replay_programs(n)
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>)
            .collect();
        let mut pe =
            ShardedEngine::new(mesh, CommCosts::default(), sharded, FixedService::new(), 4);
        let pr = pe.run_until(cut);
        assert_eq!(pr, sr);
        assert_eq!(pe.perf(), se.perf());
    }

    /// A service that swallows every request: tokens never complete, so any
    /// node issuing I/O parks forever — the shape of a lost request.
    struct LostIoService;

    impl IoService for LostIoService {
        fn submit(
            &mut self,
            _node: NodeId,
            _now: SimTime,
            _req: IoRequest,
            _token: IoToken,
            _is_async: bool,
            _sched: &mut Sched,
        ) {
        }

        fn on_timer(&mut self, _now: SimTime, _timer: u64, _sched: &mut Sched) {}
    }

    #[test]
    fn hang_report_aggregates_across_shards() {
        // Node 0 (shard 0) waits on a message node 7 (last shard) never
        // sends; the hang diagnosis must name the parked node even though
        // its program lives in a different shard than the coordinator loop.
        let mut progs: Vec<Vec<ScriptOp>> = (0..8)
            .map(|_| vec![ScriptOp::Compute(SimDuration::from_micros(5))])
            .collect();
        progs[0].push(ScriptOp::Recv { from: 7, tag: 1 });
        let (report, _, _) = run_sharded(progs, 4, None);
        assert!(!report.clean());
        let hang = report.hang.expect("quiescent with a parked node");
        assert_eq!(hang.parked_nodes, vec![0]);
    }

    #[test]
    fn hang_report_spans_first_and_last_shard_with_pending_requests() {
        // Parked nodes in the first shard (node 0, dead recv), a middle
        // shard (node 3, lost I/O), and the last shard (node 7, dead recv):
        // the forced hang must aggregate all three parked nodes and the
        // in-flight token across every shard's lane, not just shard 0's.
        let mut progs: Vec<Vec<ScriptOp>> = (0..8)
            .map(|_| vec![ScriptOp::Compute(SimDuration::from_micros(5))])
            .collect();
        progs[0].push(ScriptOp::Recv { from: 1, tag: 3 });
        progs[3].push(ScriptOp::Io(IoRequest::read(1, 4096)));
        progs[7].push(ScriptOp::Recv { from: 6, tag: 3 });
        let n = progs.len() as u32;
        let mesh = Mesh::for_nodes(n, 1);
        let programs: Vec<Box<dyn NodeProgram + Send>> = progs
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>)
            .collect();
        let mut e = ShardedEngine::new(mesh, CommCosts::default(), programs, LostIoService, 4);
        e.set_default_watchdog();
        let report = e.run();
        assert!(!report.clean());
        let hang = report.hang.expect("lost I/O and dead receives must hang");
        assert_eq!(hang.parked_nodes, vec![0, 3, 7]);
        assert_eq!(
            hang.pending_requests.len(),
            1,
            "the lost read stays in flight"
        );
    }

    #[test]
    fn shard_count_clamps_to_node_count() {
        let progs = mixed_programs(3);
        let (r, p, _) = run_sharded(progs, 64, None);
        let (sr, sp, _) = run_serial(mixed_programs(3));
        assert_eq!(r, sr);
        assert_eq!(p, sp);
    }

    #[test]
    fn configured_shards_round_trips() {
        set_shards(4);
        assert_eq!(configured_shards(), 4);
        set_shards(0);
        assert_eq!(configured_shards(), default_shards());
    }

    #[test]
    fn shard_knob_rejects_zero_and_garbage_with_typed_error() {
        assert_eq!(shards_from(None), Ok(1));
        assert_eq!(shards_from(Some("4")), Ok(4));
        assert_eq!(shards_from(Some(" 8 ")), Ok(8));
        for bad in ["0", "-3", "nope", "", "2.5", "+0"] {
            let err = shards_from(Some(bad)).expect_err(bad);
            assert_eq!(err.var, "SIO_SHARDS");
            assert_eq!(err.got, bad);
        }
        assert_eq!(
            shards_from(Some("0")).unwrap_err().to_string(),
            "invalid value \"0\" for SIO_SHARDS: expected a positive integer"
        );
    }

    #[test]
    fn thread_knob_rejects_zero_and_garbage_with_typed_error() {
        assert_eq!(threads_from(Some("3")), Ok(3));
        assert!(threads_from(None).expect("unset uses host parallelism") >= 1);
        for bad in ["0", "-1", "many", " ", "1e3"] {
            let err = threads_from(Some(bad)).expect_err(bad);
            assert_eq!(err.var, "SIO_PDES_THREADS");
            assert_eq!(err.got, bad);
        }
    }

    #[test]
    fn phase_wall_split_covers_both_phases() {
        let n = 16;
        let mesh = Mesh::for_nodes(n, 1);
        let programs: Vec<Box<dyn NodeProgram + Send>> = replay_programs(n)
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>)
            .collect();
        let mut e =
            ShardedEngine::new(mesh, CommCosts::default(), programs, FixedService::new(), 4);
        assert_eq!(e.phase_wall_ns(), (0, 0));
        let report = e.run();
        assert!(report.clean());
        let (pre, commit) = e.phase_wall_ns();
        assert!(pre > 0, "pre-step share never measured");
        assert!(commit > 0, "commit share never measured");
    }
}

//! Intra-run PDES: a region-sharded front end over the serial engine.
//!
//! [`ShardedEngine`] partitions the compute nodes into contiguous mesh
//! regions ([`Mesh::region_partition`]) and runs the simulation as a
//! synchronous-window conservative PDES:
//!
//! 1. **Window.** Each round starts at the global event floor `F` (the
//!    earliest queued event anywhere) and extends to `H = F + L`, where
//!    `L` is the conservative lookahead [`Mesh::region_lookahead`] — the
//!    minimum simulated time any region needs to influence another
//!    (cheapest cross-region message, barrier release, or broadcast
//!    stage).
//! 2. **Pre-step (parallel).** Every shard walks its pending node-resume
//!    events inside `[F, H)` and executes the program transitions for
//!    them on its own worker, memoizing the resulting [`Step`]s. This is
//!    conservative, not optimistic: a node has at most one resume in
//!    flight, and its program state and resume payload are sealed from
//!    the moment the event is scheduled until it is popped, so every
//!    pre-computed transition is guaranteed to commit — there is no
//!    rollback path.
//! 3. **Commit (serial).** The coordinator pumps the engine through the
//!    window in exact global `(time, seq)` order. Program transitions hit
//!    the per-shard memo instead of re-running; side effects — service
//!    submissions, token lifecycle, channels, collectives, timer
//!    scheduling — are applied by the same code as the serial engine, in
//!    the same order.
//!
//! Because the commit phase replays the serial engine's own event loop,
//! traces, reports, and [`EnginePerf`] counters are **byte-identical to
//! the serial engine by construction** for every shard count — the
//! golden-digest suites hold at `--shards 1`, `2`, and `8` without a
//! separate merge step, and `repro --perf` stays shard-invariant. The
//! timer-id contract needed by `fskit` (service timer ids are allocated
//! and fired in serial commit order) is preserved for the same reason.
//!
//! Scaling consequently follows Amdahl over the transition share of the
//! run: workloads whose per-node programs do real work per step scale
//! with cores, while pure script replay (trivial transitions) is bounded
//! by the serial commit loop. The worker pool sizes itself to
//! `min(shards, cores)`; `SIO_PDES_THREADS` overrides it (useful to
//! exercise the threaded path on small hosts).

use crate::engine::{Engine, EnginePerf, EngineReport, IoService};
use crate::mesh::{CommCosts, Mesh};
use crate::program::{GroupId, NodeProgram, Resume, Step};
use crate::time::{SimDuration, SimTime};
use crate::NodeId;
use std::ops::Range;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Process-wide shard-count knob, fed by `--shards N` on the `repro`
/// binary or the `SIO_SHARDS` environment variable (same contract as the
/// sweep-level `SIO_JOBS` knob in `analysis::runner`).
static CONFIGURED_SHARDS: AtomicU32 = AtomicU32::new(0);

/// Default shard count: `SIO_SHARDS` if set to a positive integer, else 1
/// (the serial engine).
pub fn default_shards() -> u32 {
    if let Ok(v) = std::env::var("SIO_SHARDS") {
        if let Ok(n) = v.trim().parse::<u32>() {
            if n > 0 {
                return n;
            }
        }
        eprintln!("[pdes] ignoring invalid SIO_SHARDS={v:?} (want a positive integer)");
    }
    1
}

/// Set the process-wide shard count; `0` clears the override back to
/// [`default_shards`].
pub fn set_shards(shards: u32) {
    CONFIGURED_SHARDS.store(shards, Ordering::Relaxed);
}

/// The effective shard count: the [`set_shards`] override, else
/// [`default_shards`].
pub fn configured_shards() -> u32 {
    match CONFIGURED_SHARDS.load(Ordering::Relaxed) {
        0 => default_shards(),
        n => n,
    }
}

/// One region's share of the simulation: the real node programs and the
/// per-node memo of pre-stepped transitions. Owned behind a mutex that is
/// only ever contended *between* phases (workers hold it during pre-step,
/// the coordinator's proxies during commit), never within one.
struct ShardState {
    /// First node id in this region (nodes are contiguous).
    start: NodeId,
    programs: Vec<Box<dyn NodeProgram + Send>>,
    /// Pre-stepped transition per node, consumed by the commit phase.
    memo: Vec<Option<Step>>,
}

impl ShardState {
    /// Pre-step a batch of sealed `(node, resume)` pairs, memoizing the
    /// transitions for the commit phase.
    fn prestep(&mut self, batch: &[(NodeId, Resume)]) {
        for &(node, resume) in batch {
            let i = (node - self.start) as usize;
            debug_assert!(self.memo[i].is_none(), "node {node} pre-stepped twice");
            self.memo[i] = Some(self.programs[i].step(node, resume));
        }
    }
}

/// The per-node program the inner serial engine sees: consumes the memo
/// filled by the pre-step phase, falling back to stepping the real program
/// inline for transitions created mid-window.
struct ShardProxy {
    shard: Arc<Mutex<ShardState>>,
}

impl NodeProgram for ShardProxy {
    fn step(&mut self, node: NodeId, resume: Resume) -> Step {
        let mut shard = self.shard.lock().expect("shard state poisoned");
        let i = (node - shard.start) as usize;
        match shard.memo[i].take() {
            Some(step) => step,
            None => shard.programs[i].step(node, resume),
        }
    }
}

/// Worker-pool size: `SIO_PDES_THREADS` if set to a positive integer,
/// else the host's available parallelism, capped at the shard count.
fn default_threads(shards: usize) -> usize {
    let cores = if let Ok(v) = std::env::var("SIO_PDES_THREADS") {
        v.trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or(1)
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    cores.min(shards).max(1)
}

/// The region-sharded engine. Construction mirrors [`Engine::new`] plus a
/// shard count; the run API ([`ShardedEngine::run`],
/// [`ShardedEngine::run_until`], watchdog, groups, perf, service access)
/// delegates to the inner serial engine, so reports, hang diagnoses, and
/// perf counters aggregate across shards exactly as the serial engine
/// would produce them.
pub struct ShardedEngine<S: IoService> {
    inner: Engine<S>,
    shards: Vec<Arc<Mutex<ShardState>>>,
    regions: Vec<Range<NodeId>>,
    lookahead: SimDuration,
    threads: usize,
}

impl<S: IoService> ShardedEngine<S> {
    /// Build a sharded engine over `programs` (node `i` runs
    /// `programs[i]`), split into at most `shards` contiguous mesh
    /// regions. `shards <= 1` (or a single-node run) still works — the
    /// window loop simply never fans out.
    pub fn new(
        mesh: Mesh,
        comm: CommCosts,
        programs: Vec<Box<dyn NodeProgram + Send>>,
        service: S,
        shards: u32,
    ) -> ShardedEngine<S> {
        let n = programs.len() as u32;
        let regions = Mesh::region_partition(n, shards);
        let lookahead = mesh.region_lookahead(&comm, &regions);
        assert!(
            lookahead > SimDuration::ZERO,
            "sharded engine requires nonzero comm costs for lookahead"
        );
        let mut progs = programs.into_iter();
        let mut shard_arcs = Vec::with_capacity(regions.len());
        let mut proxies: Vec<Box<dyn NodeProgram>> = Vec::with_capacity(n as usize);
        for r in &regions {
            let len = (r.end - r.start) as usize;
            let state = ShardState {
                start: r.start,
                programs: progs.by_ref().take(len).collect(),
                memo: std::iter::repeat_with(|| None).take(len).collect(),
            };
            let arc = Arc::new(Mutex::new(state));
            for _ in 0..len {
                proxies.push(Box::new(ShardProxy { shard: arc.clone() }));
            }
            shard_arcs.push(arc);
        }
        let threads = default_threads(shard_arcs.len());
        ShardedEngine {
            inner: Engine::new(mesh, comm, proxies, service),
            shards: shard_arcs,
            regions,
            lookahead,
            threads,
        }
    }

    /// Number of non-empty shards actually formed.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The conservative lookahead bounding each synchronization window.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Override the worker-pool size (tests use this to force the threaded
    /// path on small hosts deterministically).
    #[doc(hidden)]
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// See [`Engine::set_watchdog`].
    pub fn set_watchdog(&mut self, deadline: SimTime) {
        self.inner.set_watchdog(deadline);
    }

    /// See [`Engine::set_default_watchdog`].
    pub fn set_default_watchdog(&mut self) {
        self.inner.set_default_watchdog();
    }

    /// See [`Engine::add_group`].
    pub fn add_group(&mut self, nodes: Vec<NodeId>) -> GroupId {
        self.inner.add_group(nodes)
    }

    /// See [`Engine::perf`]. Shard-count-invariant by construction.
    pub fn perf(&self) -> EnginePerf {
        self.inner.perf()
    }

    /// See [`Engine::service`].
    pub fn service(&self) -> &S {
        self.inner.service()
    }

    /// See [`Engine::service_mut`].
    pub fn service_mut(&mut self) -> &mut S {
        self.inner.service_mut()
    }

    /// Consume the engine, returning the service.
    pub fn into_service(self) -> S {
        self.inner.into_service()
    }

    /// Run to completion. See [`Engine::run`].
    pub fn run(&mut self) -> EngineReport {
        self.run_until(SimTime(u64::MAX))
    }

    /// Run until the event queue drains or simulated time would pass
    /// `stop` (crash cut). See [`Engine::run_until`] — the report is
    /// identical to the serial engine's.
    pub fn run_until(&mut self, stop: SimTime) -> EngineReport {
        self.inner.begin_run();
        if self.threads <= 1 || self.shards.len() <= 1 {
            self.drive_inline(stop);
        } else {
            self.drive_threaded(stop);
        }
        self.inner.finish_run()
    }

    /// Map a node id to its shard index (regions are contiguous and
    /// sorted, and there are at most a handful of them).
    fn shard_of(&self, node: NodeId) -> usize {
        self.regions
            .iter()
            .position(|r| r.contains(&node))
            .expect("node outside every region")
    }

    /// Split the sealed pending resumes below `horizon` into per-shard
    /// batches. Returns `None` when there is nothing to pre-step.
    fn window_batches(&mut self, horizon: SimTime) -> Option<Vec<Vec<(NodeId, Resume)>>> {
        let mut pending = Vec::new();
        self.inner.pending_resumes_below(horizon, &mut pending);
        if pending.is_empty() {
            return None;
        }
        let mut batches = vec![Vec::new(); self.shards.len()];
        for (node, resume) in pending {
            let s = self.shard_of(node);
            batches[s].push((node, resume));
        }
        Some(batches)
    }

    /// Single-threaded window loop: same windows, same memo machinery, no
    /// fan-out. Used when only one worker would exist anyway; results are
    /// identical to the threaded path by construction.
    fn drive_inline(&mut self, stop: SimTime) {
        while let Some(f) = self.inner.next_event_time() {
            if f > stop {
                break;
            }
            let horizon = SimTime(f.0.saturating_add(self.lookahead.0));
            if let Some(batches) = self.window_batches(horizon) {
                for (s, batch) in batches.iter().enumerate() {
                    if !batch.is_empty() {
                        self.shards[s]
                            .lock()
                            .expect("shard state poisoned")
                            .prestep(batch);
                    }
                }
            }
            if self.inner.pump(Some(horizon), stop) {
                break;
            }
        }
    }

    /// Threaded window loop: persistent workers (round-robin over shards)
    /// pre-step each window's batches in parallel; the coordinator then
    /// commits the window serially.
    fn drive_threaded(&mut self, stop: SimTime) {
        let threads = self.threads.min(self.shards.len());
        // Per-worker job channels; one shared ack channel. A job is one
        // shard's batch for the current window.
        let (ack_tx, ack_rx) = mpsc::channel::<()>();
        let mut job_txs = Vec::with_capacity(threads);
        let mut job_rxs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::channel::<(usize, Vec<(NodeId, Resume)>)>();
            job_txs.push(tx);
            job_rxs.push(rx);
        }
        let shards = &self.shards;
        let inner = &mut self.inner;
        let regions = &self.regions;
        let lookahead = self.lookahead;
        std::thread::scope(|scope| {
            for rx in job_rxs {
                let ack = ack_tx.clone();
                let shards = &*shards;
                scope.spawn(move || {
                    while let Ok((s, batch)) = rx.recv() {
                        shards[s]
                            .lock()
                            .expect("shard state poisoned")
                            .prestep(&batch);
                        if ack.send(()).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(ack_tx);
            while let Some(f) = inner.next_event_time() {
                if f > stop {
                    break;
                }
                let horizon = SimTime(f.0.saturating_add(lookahead.0));
                let mut pending = Vec::new();
                inner.pending_resumes_below(horizon, &mut pending);
                let mut outstanding = 0usize;
                if !pending.is_empty() {
                    let mut batches = vec![Vec::new(); shards.len()];
                    for (node, resume) in pending {
                        let s = regions
                            .iter()
                            .position(|r| r.contains(&node))
                            .expect("node outside every region");
                        batches[s].push((node, resume));
                    }
                    for (s, batch) in batches.into_iter().enumerate() {
                        if !batch.is_empty() {
                            job_txs[s % threads]
                                .send((s, batch))
                                .expect("pre-step worker died");
                            outstanding += 1;
                        }
                    }
                    for _ in 0..outstanding {
                        ack_rx.recv().expect("pre-step worker died");
                    }
                }
                if inner.pump(Some(horizon), stop) {
                    break;
                }
            }
            drop(job_txs);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{IoRequest, IoResult, IoToken, ScriptOp, ScriptProgram};
    use crate::Sched;

    /// Deterministic recording service (mirror of the serial engine's test
    /// service): fixed latency, logs submissions and iowaits.
    struct FixedService {
        latency: SimDuration,
        submitted: Vec<(NodeId, crate::program::IoVerb, SimTime)>,
        iowaits: Vec<(NodeId, SimDuration)>,
    }

    impl FixedService {
        fn new() -> FixedService {
            FixedService {
                latency: SimDuration::from_millis(1),
                submitted: Vec::new(),
                iowaits: Vec::new(),
            }
        }
    }

    impl IoService for FixedService {
        fn submit(
            &mut self,
            node: NodeId,
            now: SimTime,
            req: IoRequest,
            token: IoToken,
            _is_async: bool,
            sched: &mut Sched,
        ) {
            self.submitted.push((node, req.verb, now));
            sched.complete_io(
                token,
                now + self.latency,
                IoResult {
                    bytes: req.bytes,
                    queued: SimDuration::ZERO,
                    service: self.latency,
                    fault: None,
                },
            );
        }

        fn on_timer(&mut self, _now: SimTime, _timer: u64, _sched: &mut Sched) {}

        fn issue_cost(&self, _node: NodeId, _req: &IoRequest) -> SimDuration {
            SimDuration::from_micros(10)
        }

        fn on_iowait(&mut self, node: NodeId, _file: u32, s: SimTime, e: SimTime) {
            self.iowaits.push((node, e.since(s)));
        }
    }

    /// A mixed workload exercising every step kind: compute jitter,
    /// sync/async I/O, barriers, eager sends into blocking receives.
    fn mixed_programs(n: u32) -> Vec<Vec<ScriptOp>> {
        (0..n)
            .map(|i| {
                let mut ops = vec![
                    ScriptOp::Compute(SimDuration::from_micros(u64::from(i) * 7 + 3)),
                    ScriptOp::Io(IoRequest::read(1 + i, 4096)),
                    ScriptOp::Barrier(0),
                    ScriptOp::IoAsync(IoRequest::write(1 + i, 65536)),
                    ScriptOp::Compute(SimDuration::from_micros(40)),
                    ScriptOp::WaitOldest,
                ];
                // A ring of eager messages that crosses every region cut.
                ops.push(ScriptOp::Send {
                    to: (i + 1) % n,
                    bytes: 512,
                    tag: 9,
                });
                ops.push(ScriptOp::Recv {
                    from: (i + n - 1) % n,
                    tag: 9,
                });
                ops.push(ScriptOp::Barrier(0));
                ops
            })
            .collect()
    }

    fn run_serial(progs: Vec<Vec<ScriptOp>>) -> (EngineReport, EnginePerf, FixedService) {
        let n = progs.len() as u32;
        let mesh = Mesh::for_nodes(n.max(2), 1);
        let programs: Vec<Box<dyn NodeProgram>> = progs
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram>)
            .collect();
        let mut e = Engine::new(mesh, CommCosts::default(), programs, FixedService::new());
        e.set_default_watchdog();
        let report = e.run();
        let perf = e.perf();
        (report, perf, e.into_service())
    }

    fn run_sharded(
        progs: Vec<Vec<ScriptOp>>,
        shards: u32,
        threads: Option<usize>,
    ) -> (EngineReport, EnginePerf, FixedService) {
        let n = progs.len() as u32;
        let mesh = Mesh::for_nodes(n.max(2), 1);
        let programs: Vec<Box<dyn NodeProgram + Send>> = progs
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>)
            .collect();
        let mut e = ShardedEngine::new(
            mesh,
            CommCosts::default(),
            programs,
            FixedService::new(),
            shards,
        );
        if let Some(t) = threads {
            e.set_threads(t);
        }
        e.set_default_watchdog();
        let report = e.run();
        let perf = e.perf();
        (report, perf, e.into_service())
    }

    #[test]
    fn sharded_matches_serial_exactly_for_every_shard_count() {
        let (sr, sp, ss) = run_serial(mixed_programs(16));
        for shards in [1, 2, 3, 8] {
            let (r, p, s) = run_sharded(mixed_programs(16), shards, None);
            assert_eq!(r, sr, "report diverged at {shards} shards");
            assert_eq!(p, sp, "perf diverged at {shards} shards");
            assert_eq!(
                s.submitted, ss.submitted,
                "I/O order diverged at {shards} shards"
            );
            assert_eq!(s.iowaits, ss.iowaits, "iowaits diverged at {shards} shards");
        }
    }

    #[test]
    fn threaded_prestep_matches_inline() {
        let (ir, ip, is_) = run_sharded(mixed_programs(24), 8, Some(1));
        let (tr, tp, ts) = run_sharded(mixed_programs(24), 8, Some(4));
        assert_eq!(tr, ir);
        assert_eq!(tp, ip);
        assert_eq!(ts.submitted, is_.submitted);
        assert_eq!(ts.iowaits, is_.iowaits);
    }

    #[test]
    fn crash_cut_matches_serial() {
        let cut = SimTime(0) + SimDuration::from_micros(500);
        let n = 12;
        let mesh = Mesh::for_nodes(n, 1);
        let serial: Vec<Box<dyn NodeProgram>> = mixed_programs(n)
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram>)
            .collect();
        let mut se = Engine::new(
            mesh,
            CommCosts::default(),
            serial,
            FixedService::new(),
        );
        let sr = se.run_until(cut);
        let sharded: Vec<Box<dyn NodeProgram + Send>> = mixed_programs(n)
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>)
            .collect();
        let mut pe =
            ShardedEngine::new(mesh, CommCosts::default(), sharded, FixedService::new(), 4);
        let pr = pe.run_until(cut);
        assert_eq!(pr, sr);
        assert_eq!(pe.perf(), se.perf());
    }

    #[test]
    fn hang_report_aggregates_across_shards() {
        // Node 0 (shard 0) waits on a message node 7 (last shard) never
        // sends; the hang diagnosis must name the parked node even though
        // its program lives in a different shard than the coordinator loop.
        let mut progs: Vec<Vec<ScriptOp>> = (0..8)
            .map(|_| vec![ScriptOp::Compute(SimDuration::from_micros(5))])
            .collect();
        progs[0].push(ScriptOp::Recv { from: 7, tag: 1 });
        let (report, _, _) = run_sharded(progs, 4, None);
        assert!(!report.clean());
        let hang = report.hang.expect("quiescent with a parked node");
        assert_eq!(hang.parked_nodes, vec![0]);
    }

    #[test]
    fn shard_count_clamps_to_node_count() {
        let progs = mixed_programs(3);
        let (r, p, _) = run_sharded(progs, 64, None);
        let (sr, sp, _) = run_serial(mixed_programs(3));
        assert_eq!(r, sr);
        assert_eq!(p, sp);
    }

    #[test]
    fn configured_shards_round_trips() {
        set_shards(4);
        assert_eq!(configured_shards(), 4);
        set_shards(0);
        assert_eq!(configured_shards(), default_shards());
    }
}

//! Mechanical disk model.
//!
//! Commodity disks of the Paragon era (the CCSF system used 1.2 GB drives)
//! are modeled with the classic three-component service time: seek (affine in
//! cylinder distance), rotational latency (half a revolution on average; we
//! use a deterministic seeded draw to avoid systematic bias), and media
//! transfer (bytes / sustained rate). The paper's §1 observation — "the
//! commodity disk market favors low cost, low power consumption and high
//! capacity over high data rates" — is why these constants are small.
//!
//! PDES ownership: a disk belongs to exactly one RAID array, which belongs
//! to exactly one I/O node — disk state is shard-owned transitively through
//! [`crate::ionode::IoNodeSim`] and never touched across nodes.

use crate::time::{transfer_time, SimDuration};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Disk mechanism parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiskParams {
    /// Usable capacity, bytes.
    pub capacity: u64,
    /// Bytes per cylinder (defines the seek-distance metric).
    pub cylinder_bytes: u64,
    /// Fixed seek overhead once the arm moves at all, ns.
    pub seek_base: SimDuration,
    /// Additional seek time per cylinder traveled, ns.
    pub seek_per_cyl: SimDuration,
    /// Full-revolution time, ns (rotational latency averages half of this).
    pub revolution: SimDuration,
    /// Sustained media transfer rate, bytes/second.
    pub transfer_rate: f64,
}

impl Default for DiskParams {
    fn default() -> Self {
        crate::calibration::disk_params()
    }
}

/// One disk with a head position and a deterministic rotational-latency
/// stream.
#[derive(Debug, Clone)]
pub struct Disk {
    params: DiskParams,
    head_cylinder: u64,
    rng: StdRng,
}

impl Disk {
    /// New disk with the head parked at cylinder 0. `seed` fixes the
    /// rotational-latency stream (same seed ⇒ same service times).
    pub fn new(params: DiskParams, seed: u64) -> Disk {
        Disk {
            params,
            head_cylinder: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Cylinder containing a byte offset.
    pub fn cylinder_of(&self, offset: u64) -> u64 {
        offset / self.params.cylinder_bytes.max(1)
    }

    /// Current head cylinder.
    pub fn head_cylinder(&self) -> u64 {
        self.head_cylinder
    }

    /// Service one request at `offset` for `bytes`; moves the head. Returns
    /// total service time (seek + rotation + transfer).
    pub fn service(&mut self, offset: u64, bytes: u64) -> SimDuration {
        let target = self.cylinder_of(offset);
        let distance = target.abs_diff(self.head_cylinder);
        let seek = if distance == 0 {
            SimDuration::ZERO
        } else {
            self.params.seek_base + self.params.seek_per_cyl.times(distance)
        };
        // Deterministic uniform rotational delay in [0, revolution).
        let rot = SimDuration(
            self.rng
                .random_range(0..self.params.revolution.nanos().max(1)),
        );
        let xfer = transfer_time(bytes, self.params.transfer_rate);
        self.head_cylinder = self.cylinder_of(offset + bytes.saturating_sub(1));
        seek + rot + xfer
    }

    /// Service time for a request that continues exactly where the head
    /// stands (no seek, no rotational loss) — used for aggregated sequential
    /// runs.
    pub fn service_sequential(&mut self, offset: u64, bytes: u64) -> SimDuration {
        self.head_cylinder = self.cylinder_of(offset + bytes.saturating_sub(1));
        transfer_time(bytes, self.params.transfer_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_params() -> DiskParams {
        DiskParams {
            capacity: 1_200_000_000,
            cylinder_bytes: 1 << 20,
            seek_base: SimDuration::from_millis(4),
            seek_per_cyl: SimDuration::from_micros(10),
            revolution: SimDuration::from_millis(11), // ~5400 rpm
            transfer_rate: 2.0e6,
        }
    }

    #[test]
    fn zero_distance_skips_seek() {
        let mut d = Disk::new(test_params(), 1);
        // First access at cylinder 0: no seek component.
        let t = d.service(0, 4096);
        let max_no_seek = test_params().revolution + transfer_time(4096, 2.0e6);
        assert!(t <= max_no_seek, "{t:?} > {max_no_seek:?}");
    }

    #[test]
    fn longer_seeks_cost_more() {
        // Compare average over the rotational stream by fixing the seed.
        let far: u64 = 500 << 20;
        let near: u64 = 2 << 20;
        let mut total_far = 0u64;
        let mut total_near = 0u64;
        for seed in 0..20 {
            let mut d1 = Disk::new(test_params(), seed);
            total_far += d1.service(far, 4096).nanos();
            let mut d2 = Disk::new(test_params(), seed);
            total_near += d2.service(near, 4096).nanos();
        }
        assert!(total_far > total_near);
    }

    #[test]
    fn head_moves_to_request_end() {
        let mut d = Disk::new(test_params(), 1);
        d.service(10 << 20, 2 << 20);
        assert_eq!(d.head_cylinder(), d.cylinder_of((12 << 20) - 1));
    }

    #[test]
    fn sequential_service_is_pure_transfer() {
        let mut d = Disk::new(test_params(), 1);
        let t = d.service_sequential(0, 2_000_000);
        assert_eq!(t, transfer_time(2_000_000, 2.0e6));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = Disk::new(test_params(), 42);
        let mut b = Disk::new(test_params(), 42);
        for i in 0..50u64 {
            let off = ((i * 37) % 1000) << 20;
            assert_eq!(a.service(off, 8192), b.service(off, 8192));
        }
    }

    #[test]
    fn transfer_dominates_large_requests() {
        let mut d = Disk::new(test_params(), 1);
        let t = d.service(0, 20_000_000); // 10 s of transfer at 2 MB/s
        assert!(t.as_secs_f64() > 9.9);
    }
}

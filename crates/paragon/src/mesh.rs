//! 2-D mesh interconnect model.
//!
//! The Paragon XP/S connects nodes in a 2-D mesh with wormhole routing. For
//! characterization purposes the salient costs are per-message software
//! overhead, per-hop latency, and link bandwidth; contention inside the mesh
//! is second-order next to I/O-node queueing and is not modeled (documented
//! substitution — see DESIGN.md).
//!
//! Compute nodes occupy the mesh row-major; I/O nodes sit in an extra column
//! on the right edge, matching the Paragon practice of dedicating edge
//! partitions to I/O.

use crate::time::{transfer_time, SimDuration};
use crate::NodeId;
use serde::{Deserialize, Serialize};

/// Interconnect cost parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CommCosts {
    /// Per-message software (setup) overhead, ns.
    pub sw_overhead: SimDuration,
    /// Per-hop wire/router latency, ns.
    pub hop_latency: SimDuration,
    /// Link bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Fixed cost of a barrier stage (one level of the reduction tree).
    pub barrier_stage: SimDuration,
}

impl Default for CommCosts {
    fn default() -> Self {
        crate::calibration::comm_costs()
    }
}

/// Health of one link region: multipliers applied on top of the healthy
/// [`CommCosts`]. A region covers the edge links serving one I/O node —
/// the granularity at which the chaos layer's `LinkDegrade`/`LinkHeal`
/// fault events strike.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkQuality {
    /// Bandwidth divisor, ≥ 1 (1 = healthy).
    pub bw_div: f64,
    /// Hop-latency multiplier, ≥ 1 (1 = healthy).
    pub lat_mult: f64,
}

impl LinkQuality {
    /// Healthy links: both multipliers exactly 1.
    pub const HEALTHY: LinkQuality = LinkQuality {
        bw_div: 1.0,
        lat_mult: 1.0,
    };

    /// Whether either multiplier departs from healthy.
    pub fn degraded(&self) -> bool {
        self.bw_div != 1.0 || self.lat_mult != 1.0
    }

    /// Compose two degradations: the worse multiplier wins on each axis.
    pub fn worse(self, other: LinkQuality) -> LinkQuality {
        LinkQuality {
            bw_div: self.bw_div.max(other.bw_div),
            lat_mult: self.lat_mult.max(other.lat_mult),
        }
    }
}

/// Per-region link health for a whole machine: one [`LinkQuality`] per I/O
/// node's edge-link region, mutated by `LinkDegrade`/`LinkHeal` fault
/// events as a run progresses.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkState {
    regions: Vec<LinkQuality>,
}

impl LinkState {
    /// All regions healthy.
    pub fn healthy(regions: usize) -> LinkState {
        LinkState {
            regions: vec![LinkQuality::HEALTHY; regions],
        }
    }

    /// Degrade `region`, composing with any degradation already in force
    /// (the worse multiplier wins on each axis).
    pub fn degrade(&mut self, region: u32, q: LinkQuality) {
        let slot = &mut self.regions[region as usize];
        *slot = slot.worse(q);
    }

    /// Restore `region` to healthy.
    pub fn heal(&mut self, region: u32) {
        self.regions[region as usize] = LinkQuality::HEALTHY;
    }

    /// The quality of one region.
    pub fn region(&self, region: u32) -> LinkQuality {
        self.regions[region as usize]
    }

    /// The worst quality across all regions — what a broadcast touching
    /// every region experiences.
    pub fn worst(&self) -> LinkQuality {
        self.regions
            .iter()
            .fold(LinkQuality::HEALTHY, |acc, &q| acc.worse(q))
    }

    /// Whether any region is degraded.
    pub fn any_degraded(&self) -> bool {
        self.regions.iter().any(|q| q.degraded())
    }
}

/// 2-D mesh geometry with compute nodes in the body and I/O nodes on the
/// right edge column.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Mesh {
    /// Mesh rows.
    pub rows: u32,
    /// Mesh columns occupied by compute nodes.
    pub cols: u32,
    /// Number of compute nodes (≤ rows × cols).
    pub compute_nodes: u32,
    /// Number of I/O nodes (placed on column `cols`, spread over rows).
    pub io_nodes: u32,
}

impl Mesh {
    /// Build a mesh for the given node counts; columns are chosen near the
    /// square root of the node count, as the Paragon's partitions were.
    pub fn for_nodes(compute_nodes: u32, io_nodes: u32) -> Mesh {
        assert!(compute_nodes > 0, "need at least one compute node");
        let cols = (compute_nodes as f64).sqrt().ceil() as u32;
        let rows = compute_nodes.div_ceil(cols).max(io_nodes.max(1));
        Mesh {
            rows,
            cols,
            compute_nodes,
            io_nodes,
        }
    }

    /// (row, col) of a compute node.
    pub fn compute_pos(&self, node: NodeId) -> (u32, u32) {
        assert!(node < self.compute_nodes, "node {node} out of range");
        (node / self.cols, node % self.cols)
    }

    /// (row, col) of an I/O node, spread evenly down the extra edge column.
    pub fn io_pos(&self, io_node: u32) -> (u32, u32) {
        assert!(io_node < self.io_nodes, "i/o node {io_node} out of range");
        let row = if self.io_nodes <= 1 {
            0
        } else {
            io_node * (self.rows - 1) / (self.io_nodes - 1)
        };
        (row, self.cols)
    }

    /// Manhattan hop count between two mesh positions.
    pub fn hops(a: (u32, u32), b: (u32, u32)) -> u32 {
        a.0.abs_diff(b.0) + a.1.abs_diff(b.1)
    }

    /// Hop count from a compute node to an I/O node.
    pub fn compute_to_io_hops(&self, node: NodeId, io_node: u32) -> u32 {
        Mesh::hops(self.compute_pos(node), self.io_pos(io_node))
    }

    /// Hop count between two compute nodes.
    pub fn compute_hops(&self, a: NodeId, b: NodeId) -> u32 {
        Mesh::hops(self.compute_pos(a), self.compute_pos(b))
    }

    /// One-way message time for `bytes` over `hops` hops.
    pub fn msg_time(&self, costs: &CommCosts, hops: u32, bytes: u64) -> SimDuration {
        costs.sw_overhead
            + costs.hop_latency.times(hops as u64)
            + transfer_time(bytes, costs.bandwidth)
    }

    /// Barrier completion cost for a group of `n` nodes: a log₂ reduction
    /// tree of barrier stages.
    pub fn barrier_time(&self, costs: &CommCosts, n: u32) -> SimDuration {
        if n <= 1 {
            return SimDuration::ZERO;
        }
        let stages = 32 - (n - 1).leading_zeros(); // ceil(log2(n))
        costs.barrier_stage.times(stages as u64 * 2) // reduce + release
    }

    /// Broadcast completion cost: log₂(n) stages, each forwarding the
    /// payload one tree level down.
    pub fn broadcast_time(&self, costs: &CommCosts, n: u32, bytes: u64) -> SimDuration {
        if n <= 1 {
            return SimDuration::ZERO;
        }
        let stages = 32 - (n - 1).leading_zeros();
        let per_stage = costs.sw_overhead
            + costs.hop_latency.times(2) // average tree-edge length
            + transfer_time(bytes, costs.bandwidth);
        per_stage.times(stages as u64)
    }

    /// Partition `nodes` compute nodes into `shards` contiguous node-id
    /// ranges. Node ids are row-major, so each range is a horizontal band
    /// of the mesh — the region shape that maximizes the minimum hop count
    /// between regions (and therefore the conservative lookahead a sharded
    /// engine can claim). Returns at most `shards` non-empty ranges.
    pub fn region_partition(nodes: u32, shards: u32) -> Vec<std::ops::Range<u32>> {
        let shards = shards.clamp(1, nodes.max(1));
        let base = nodes / shards;
        let extra = nodes % shards;
        let mut out = Vec::with_capacity(shards as usize);
        let mut start = 0;
        for s in 0..shards {
            let len = base + u32::from(s < extra);
            if len == 0 {
                continue;
            }
            out.push(start..start + len);
            start += len;
        }
        out
    }

    /// Minimum hop count between two contiguous row-major node ranges
    /// (`a` entirely before `b`). Ranges that abut inside a row are one
    /// hop apart; otherwise the closest pair sits vertically across the
    /// row gap.
    pub fn min_range_hops(&self, a: &std::ops::Range<u32>, b: &std::ops::Range<u32>) -> u32 {
        assert!(a.end <= b.start && !a.is_empty() && !b.is_empty());
        let last_row = self.compute_pos(a.end - 1).0;
        let first_row = self.compute_pos(b.start).0;
        if first_row == last_row {
            1 // adjacent ids in the same row
        } else {
            first_row - last_row
        }
    }

    /// Conservative lookahead for a region-sharded engine: no event executed
    /// in one region at time `t` can affect another region (or any collective
    /// spanning regions) before `t + lookahead`. The bound is the minimum of
    /// the cheapest cross-region message (`sw_overhead` + `hop_latency` ×
    /// min inter-region hops), the cheapest barrier release (two stages of
    /// the reduction tree), and the cheapest broadcast stage.
    pub fn region_lookahead(
        &self,
        costs: &CommCosts,
        regions: &[std::ops::Range<u32>],
    ) -> SimDuration {
        let mut min_hops = u32::MAX;
        for pair in regions.windows(2) {
            min_hops = min_hops.min(self.min_range_hops(&pair[0], &pair[1]));
        }
        let msg = if min_hops == u32::MAX {
            SimDuration(u64::MAX) // single region: messages never cross
        } else {
            costs.sw_overhead + costs.hop_latency.times(min_hops as u64)
        };
        let barrier = costs.barrier_stage.times(2);
        let bcast_stage = costs.sw_overhead + costs.hop_latency.times(2);
        SimDuration(msg.0.min(barrier.0).min(bcast_stage.0))
    }

    /// [`Mesh::msg_time`] over links of quality `q`. Healthy quality takes
    /// the exact healthy path, so runs without link faults are bit-identical
    /// to runs that never consult a [`LinkState`].
    pub fn msg_time_via(
        &self,
        costs: &CommCosts,
        q: LinkQuality,
        hops: u32,
        bytes: u64,
    ) -> SimDuration {
        if !q.degraded() {
            return self.msg_time(costs, hops, bytes);
        }
        costs.sw_overhead
            + costs.hop_latency.times(hops as u64).mul_f64(q.lat_mult)
            + transfer_time(bytes, costs.bandwidth / q.bw_div)
    }

    /// [`Mesh::broadcast_time`] over links of quality `q` (same healthy-path
    /// bit-identity guarantee as [`Mesh::msg_time_via`]).
    pub fn broadcast_time_via(
        &self,
        costs: &CommCosts,
        q: LinkQuality,
        n: u32,
        bytes: u64,
    ) -> SimDuration {
        if !q.degraded() {
            return self.broadcast_time(costs, n, bytes);
        }
        if n <= 1 {
            return SimDuration::ZERO;
        }
        let stages = 32 - (n - 1).leading_zeros();
        let per_stage = costs.sw_overhead
            + costs.hop_latency.times(2).mul_f64(q.lat_mult)
            + transfer_time(bytes, costs.bandwidth / q.bw_div);
        per_stage.times(stages as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_row_major() {
        let m = Mesh::for_nodes(128, 16);
        assert_eq!(m.compute_pos(0), (0, 0));
        assert_eq!(m.compute_pos(1), (0, 1));
        assert_eq!(m.compute_pos(m.cols), (1, 0));
        assert!(m.rows * m.cols >= 128);
    }

    #[test]
    fn io_nodes_on_edge_column() {
        let m = Mesh::for_nodes(128, 16);
        for io in 0..16 {
            let (r, c) = m.io_pos(io);
            assert_eq!(c, m.cols);
            assert!(r < m.rows);
        }
        // Spread: first at top, last at bottom.
        assert_eq!(m.io_pos(0).0, 0);
        assert_eq!(m.io_pos(15).0, m.rows - 1);
    }

    #[test]
    fn single_io_node_at_top() {
        let m = Mesh::for_nodes(4, 1);
        assert_eq!(m.io_pos(0), (0, m.cols));
    }

    #[test]
    fn hops_manhattan() {
        assert_eq!(Mesh::hops((0, 0), (3, 4)), 7);
        assert_eq!(Mesh::hops((2, 2), (2, 2)), 0);
        let m = Mesh::for_nodes(16, 2);
        assert_eq!(m.compute_hops(0, 0), 0);
        assert!(m.compute_to_io_hops(0, 0) >= 1);
    }

    #[test]
    fn msg_time_monotone_in_bytes_and_hops() {
        let m = Mesh::for_nodes(16, 2);
        let c = CommCosts {
            sw_overhead: SimDuration(1000),
            hop_latency: SimDuration(20),
            bandwidth: 200.0e6,
            barrier_stage: SimDuration(5000),
        };
        let t_small = m.msg_time(&c, 2, 100);
        let t_big = m.msg_time(&c, 2, 1_000_000);
        let t_far = m.msg_time(&c, 10, 100);
        assert!(t_big > t_small);
        assert!(t_far > t_small);
        assert_eq!(m.msg_time(&c, 0, 0), c.sw_overhead);
    }

    #[test]
    fn barrier_and_broadcast_scale_logarithmically() {
        let m = Mesh::for_nodes(128, 16);
        let c = CommCosts::default();
        assert_eq!(m.barrier_time(&c, 1), SimDuration::ZERO);
        let b2 = m.barrier_time(&c, 2);
        let b128 = m.barrier_time(&c, 128);
        assert_eq!(b128.nanos(), b2.nanos() * 7); // log2(128)=7 stages
        assert_eq!(m.broadcast_time(&c, 1, 1 << 20), SimDuration::ZERO);
        let bc2 = m.broadcast_time(&c, 2, 1 << 20);
        let bc128 = m.broadcast_time(&c, 128, 1 << 20);
        assert_eq!(bc128.nanos(), bc2.nanos() * 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let m = Mesh::for_nodes(4, 1);
        let _ = m.compute_pos(4);
    }

    #[test]
    fn region_partition_covers_contiguously() {
        for (nodes, shards) in [(128u32, 8u32), (7, 3), (4, 8), (1, 1), (513, 8)] {
            let parts = Mesh::region_partition(nodes, shards);
            assert!(parts.len() as u32 <= shards.max(1));
            assert_eq!(parts[0].start, 0);
            assert_eq!(parts.last().unwrap().end, nodes);
            for pair in parts.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            // Near-even split: sizes differ by at most one.
            let sizes: Vec<u32> = parts.iter().map(|r| r.end - r.start).collect();
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn region_lookahead_is_a_safe_lower_bound() {
        let m = Mesh::for_nodes(128, 16);
        let c = CommCosts::default();
        let parts = Mesh::region_partition(128, 8);
        let la = m.region_lookahead(&c, &parts);
        assert!(la.nanos() >= 1);
        // The bound never exceeds any cross-region message or collective.
        for pair in parts.windows(2) {
            let hops = m.min_range_hops(&pair[0], &pair[1]);
            assert!(la <= m.msg_time(&c, hops, 0));
        }
        assert!(la <= m.barrier_time(&c, 2));
        assert!(la <= m.broadcast_time(&c, 2, 0));
        // Single region: only collectives bound the window.
        let one = Mesh::region_partition(128, 1);
        assert!(m.region_lookahead(&c, &one) >= la);
    }

    #[test]
    fn healthy_link_quality_is_bit_identical() {
        let m = Mesh::for_nodes(128, 16);
        let c = CommCosts::default();
        for (hops, bytes) in [(1, 0u64), (3, 64), (9, 1 << 20), (17, 123_456)] {
            assert_eq!(
                m.msg_time_via(&c, LinkQuality::HEALTHY, hops, bytes),
                m.msg_time(&c, hops, bytes)
            );
            assert_eq!(
                m.broadcast_time_via(&c, LinkQuality::HEALTHY, hops, bytes),
                m.broadcast_time(&c, hops, bytes)
            );
        }
    }

    #[test]
    fn degraded_links_cost_more_and_compose_worse() {
        let m = Mesh::for_nodes(128, 16);
        let c = CommCosts::default();
        let q = LinkQuality {
            bw_div: 4.0,
            lat_mult: 2.0,
        };
        assert!(m.msg_time_via(&c, q, 5, 1 << 20) > m.msg_time(&c, 5, 1 << 20));
        assert!(m.broadcast_time_via(&c, q, 64, 4096) > m.broadcast_time(&c, 64, 4096));

        let mut state = LinkState::healthy(4);
        assert!(!state.any_degraded());
        state.degrade(
            2,
            LinkQuality {
                bw_div: 2.0,
                lat_mult: 8.0,
            },
        );
        state.degrade(2, q);
        // Composition takes the worse multiplier per axis.
        assert_eq!(
            state.region(2),
            LinkQuality {
                bw_div: 4.0,
                lat_mult: 8.0
            }
        );
        assert_eq!(state.worst(), state.region(2));
        assert!(state.any_degraded());
        state.heal(2);
        assert!(!state.any_degraded());
        assert_eq!(state.worst(), LinkQuality::HEALTHY);
    }
}

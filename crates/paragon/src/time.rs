//! Simulated time.
//!
//! Time is a 64-bit count of nanoseconds since run start. Nanosecond
//! resolution holds round-off error at bay over the paper's longest runs
//! (ESCAT: ~6,000 s ≈ 6 × 10¹² ns, comfortably inside `u64`), and integer
//! arithmetic keeps the simulator deterministic across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since run start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (nanoseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The run start.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since run start.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start, as `f64` (report formatting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Saturating difference between two instants.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole seconds.
    pub fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to nanoseconds; negative clamps to 0).
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1.0e9).round() as u64)
    }

    /// From milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Nanosecond count.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds, as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Scale by an integer factor.
    pub fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }

    /// Scale by a float factor (rounds; negative clamps to 0).
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k).max(0.0).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Duration for transferring `bytes` at `bytes_per_sec`, rounded up to whole
/// nanoseconds (never zero for nonzero transfers on a finite-rate link).
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> SimDuration {
    if bytes == 0 || bytes_per_sec <= 0.0 {
        return SimDuration::ZERO;
    }
    let ns = (bytes as f64 / bytes_per_sec) * 1.0e9;
    SimDuration(ns.ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.nanos(), 2_000_000_000);
        assert_eq!(t.since(SimTime(500_000_000)).nanos(), 1_500_000_000);
        assert_eq!(SimTime(5).since(SimTime(9)).nanos(), 0); // saturates
        assert_eq!((SimDuration(3) + SimDuration(4)).nanos(), 7);
        assert_eq!((SimDuration(3) - SimDuration(4)).nanos(), 0);
        assert_eq!(SimDuration::from_millis(1).nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).nanos(), 1_000);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(0.5).nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0).nanos(), 0);
        assert!((SimDuration::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(1.5).nanos(),
            3_000_000_000
        );
        assert_eq!(SimDuration::from_secs(2).times(3).nanos(), 6_000_000_000);
    }

    #[test]
    fn transfer_time_rounds_up_and_handles_edges() {
        assert_eq!(transfer_time(0, 1e6).nanos(), 0);
        assert_eq!(transfer_time(100, 0.0).nanos(), 0);
        // 1 byte at 1 GB/s = 1 ns exactly.
        assert_eq!(transfer_time(1, 1.0e9).nanos(), 1);
        // 1 byte at 2 GB/s = 0.5 ns, rounds up to 1.
        assert_eq!(transfer_time(1, 2.0e9).nanos(), 1);
        // 1 MB at 1 MB/s = 1 s.
        assert_eq!(
            transfer_time(1 << 20, (1 << 20) as f64).nanos(),
            1_000_000_000
        );
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime(1).max(SimTime(2)), SimTime(2));
        assert_eq!(format!("{}", SimTime(1_500_000_000)), "1.500000s");
        assert_eq!(format!("{}", SimDuration(250_000)), "0.000250s");
    }
}

//! I/O node request-queue model.
//!
//! Each I/O node serves stripe-segment requests against its RAID-3 array,
//! one at a time, from a queue with a configurable discipline. The file
//! system (sio-pfs / sio-ppfs) splits application requests into segments,
//! submits them here, and arms a timer for [`IoNodeSim::next_done`]; on each
//! timer it calls [`IoNodeSim::complete_head`] and re-arms. This exposes the
//! one machine behavior the paper's time columns hinge on: queueing delay
//! when 128 synchronized clients burst onto 16 servers.

use crate::raid::Raid3;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Queue discipline for pending segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// First-come-first-served (the PFS default; our baseline).
    Fifo,
    /// Circular SCAN: serve pending segments in ascending disk-offset order
    /// from the current head position, wrapping at the end — an ablation for
    /// DESIGN.md experiment A3.
    CScan,
    /// Shortest-seek-time-first: serve the pending segment closest to the
    /// current head position. Minimizes per-step seek cost at the risk of
    /// starving distant requests (which is why real systems prefer C-SCAN).
    Sstf,
}

/// One stripe-segment request at an I/O node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentReq {
    /// Caller-chosen id, returned on completion.
    pub id: u64,
    /// Byte offset on this I/O node's array.
    pub offset: u64,
    /// Segment length.
    pub bytes: u64,
    /// True for writes.
    pub write: bool,
    /// Skip the mechanical seek/rotation component (the segment is known to
    /// continue the previous one — used by aggregated sequential runs).
    pub sequential: bool,
}

/// An I/O node: a request queue over one RAID-3 array.
#[derive(Debug)]
pub struct IoNodeSim {
    array: Raid3,
    discipline: QueueDiscipline,
    /// Server CPU cost charged per segment.
    per_request: SimDuration,
    /// Currently serviced segment and its completion time.
    busy: Option<(SimTime, SegmentReq)>,
    pending: VecDeque<SegmentReq>,
    /// Completed-segment count (statistics).
    completed: u64,
    /// Sum of queueing delays (statistics).
    queued_total: SimDuration,
    /// Arrival times for queued segments, parallel to `pending`.
    arrivals: VecDeque<SimTime>,
}

impl IoNodeSim {
    /// New idle I/O node.
    pub fn new(array: Raid3, discipline: QueueDiscipline, per_request: SimDuration) -> IoNodeSim {
        IoNodeSim {
            array,
            discipline,
            per_request,
            busy: None,
            pending: VecDeque::new(),
            arrivals: VecDeque::new(),
            completed: 0,
            queued_total: SimDuration::ZERO,
        }
    }

    /// Mutable access to the underlying array (fault injection).
    pub fn array_mut(&mut self) -> &mut Raid3 {
        &mut self.array
    }

    /// Submit a segment at time `now`. Returns `true` if the node was idle
    /// and the caller must (re-)arm its completion timer.
    pub fn submit(&mut self, now: SimTime, req: SegmentReq) -> bool {
        if self.busy.is_none() {
            self.start(now, req, now);
            true
        } else {
            self.pending.push_back(req);
            self.arrivals.push_back(now);
            false
        }
    }

    fn start(&mut self, now: SimTime, req: SegmentReq, arrived: SimTime) {
        self.queued_total += now.since(arrived);
        let mech = if req.sequential {
            if req.write {
                self.array.write_sequential(req.offset, req.bytes)
            } else {
                // Sequential read continuation: pure transfer.
                self.array.write_sequential(req.offset, req.bytes)
            }
        } else if req.write {
            self.array.write(req.offset, req.bytes)
        } else {
            self.array.read(req.offset, req.bytes)
        };
        let done = now + self.per_request + mech;
        self.busy = Some((done, req));
    }

    /// Completion time of the in-service segment, if any.
    pub fn next_done(&self) -> Option<(SimTime, u64)> {
        self.busy.map(|(t, r)| (t, r.id))
    }

    /// Complete the in-service segment (must be called at its `next_done`
    /// time) and start the next pending segment per the discipline. Returns
    /// the finished segment id.
    ///
    /// # Panics
    /// If the node is idle.
    pub fn complete_head(&mut self, now: SimTime) -> u64 {
        let (done, req) = self.busy.take().expect("complete_head on idle i/o node");
        debug_assert!(now >= done, "completing before service finished");
        self.completed += 1;
        if let Some(idx) = self.pick_next(req.offset + req.bytes) {
            let next = self.pending.remove(idx).unwrap();
            let arrived = self.arrivals.remove(idx).unwrap();
            self.start(now, next, arrived);
        }
        req.id
    }

    fn pick_next(&self, head_offset: u64) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        match self.discipline {
            QueueDiscipline::Fifo => Some(0),
            QueueDiscipline::CScan => {
                // Smallest offset >= head, else wrap to smallest overall.
                let mut best_ge: Option<(u64, usize)> = None;
                let mut best_any: Option<(u64, usize)> = None;
                for (i, r) in self.pending.iter().enumerate() {
                    if best_any.is_none_or(|(o, _)| r.offset < o) {
                        best_any = Some((r.offset, i));
                    }
                    if r.offset >= head_offset && best_ge.is_none_or(|(o, _)| r.offset < o) {
                        best_ge = Some((r.offset, i));
                    }
                }
                best_ge.or(best_any).map(|(_, i)| i)
            }
            QueueDiscipline::Sstf => self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.offset.abs_diff(head_offset))
                .map(|(i, _)| i),
        }
    }

    /// Number of segments waiting (not counting the one in service).
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Whether a segment is in service.
    pub fn busy(&self) -> bool {
        self.busy.is_some()
    }

    /// Segments completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total queueing delay accumulated by started segments.
    pub fn queued_total(&self) -> SimDuration {
        self.queued_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use crate::raid::RaidParams;

    fn node(discipline: QueueDiscipline) -> IoNodeSim {
        IoNodeSim::new(
            Raid3::new(DiskParams::default(), RaidParams::default(), 3),
            discipline,
            SimDuration::from_millis(1),
        )
    }

    fn seg(id: u64, offset: u64, bytes: u64) -> SegmentReq {
        SegmentReq {
            id,
            offset,
            bytes,
            write: false,
            sequential: false,
        }
    }

    #[test]
    fn idle_submit_starts_immediately() {
        let mut n = node(QueueDiscipline::Fifo);
        assert!(n.submit(SimTime(0), seg(1, 0, 4096)));
        assert!(n.busy());
        let (done, id) = n.next_done().unwrap();
        assert_eq!(id, 1);
        assert!(done > SimTime(0));
    }

    #[test]
    fn fifo_order_preserved() {
        let mut n = node(QueueDiscipline::Fifo);
        n.submit(SimTime(0), seg(1, 500 << 20, 4096));
        assert!(!n.submit(SimTime(0), seg(2, 100 << 20, 4096)));
        assert!(!n.submit(SimTime(0), seg(3, 900 << 20, 4096)));
        let mut order = Vec::new();
        while let Some((t, _)) = n.next_done() {
            order.push(n.complete_head(t));
        }
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(n.completed(), 3);
        assert_eq!(n.queue_depth(), 0);
    }

    #[test]
    fn cscan_orders_by_offset_from_head() {
        let mut n = node(QueueDiscipline::CScan);
        n.submit(SimTime(0), seg(1, 500 << 20, 4096));
        n.submit(SimTime(0), seg(2, 100 << 20, 4096));
        n.submit(SimTime(0), seg(3, 900 << 20, 4096));
        n.submit(SimTime(0), seg(4, 600 << 20, 4096));
        let mut order = Vec::new();
        while let Some((t, _)) = n.next_done() {
            order.push(n.complete_head(t));
        }
        // Head ends segment 1 around 500 MB: ascending from there (600, 900),
        // then wrap to 100.
        assert_eq!(order, vec![1, 4, 3, 2]);
    }

    #[test]
    fn cscan_beats_fifo_on_scattered_bursts() {
        // A burst of offset-scattered segments: C-SCAN should finish no later
        // than FIFO (usually strictly earlier thanks to shorter seeks).
        let offs: Vec<u64> = (0..32).map(|i| ((i * 37) % 64) << 24).collect();
        let run = |d| {
            let mut n = node(d);
            for (i, &o) in offs.iter().enumerate() {
                n.submit(SimTime(0), seg(i as u64, o, 65536));
            }
            let mut last = SimTime(0);
            while let Some((t, _)) = n.next_done() {
                n.complete_head(t);
                last = t;
            }
            last
        };
        let fifo = run(QueueDiscipline::Fifo);
        let cscan = run(QueueDiscipline::CScan);
        assert!(cscan <= fifo, "cscan {cscan} vs fifo {fifo}");
    }

    #[test]
    fn sstf_picks_nearest_offset() {
        let mut n = node(QueueDiscipline::Sstf);
        n.submit(SimTime(0), seg(1, 500 << 20, 4096));
        n.submit(SimTime(0), seg(2, 100 << 20, 4096));
        n.submit(SimTime(0), seg(3, 490 << 20, 4096));
        n.submit(SimTime(0), seg(4, 900 << 20, 4096));
        let mut order = Vec::new();
        while let Some((t, _)) = n.next_done() {
            order.push(n.complete_head(t));
        }
        // Head ends near 500 MB: nearest is 490, then 900 vs 100 -> 900
        // (410 MB away vs 390... 490->100 is 390, 490->900 is 410): 100 next.
        assert_eq!(order[0], 1);
        assert_eq!(order[1], 3);
        assert_eq!(order, vec![1, 3, 2, 4]);
    }

    #[test]
    fn queueing_delay_accounted() {
        let mut n = node(QueueDiscipline::Fifo);
        n.submit(SimTime(0), seg(1, 0, 1 << 20));
        n.submit(SimTime(0), seg(2, 0, 1 << 20));
        let (t1, _) = n.next_done().unwrap();
        n.complete_head(t1);
        assert_eq!(n.queued_total(), t1.since(SimTime(0)));
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn complete_on_idle_panics() {
        let mut n = node(QueueDiscipline::Fifo);
        n.complete_head(SimTime(0));
    }
}

//! I/O node request-queue model.
//!
//! Each I/O node serves stripe-segment requests against its RAID-3 array,
//! one at a time, from a queue with a configurable discipline. The file
//! system (sio-pfs / sio-ppfs) splits application requests into segments,
//! submits them here, and arms a timer for [`IoNodeSim::next_done`]; on each
//! timer it calls [`IoNodeSim::complete_head`] and re-arms. This exposes the
//! one machine behavior the paper's time columns hinge on: queueing delay
//! when 128 synchronized clients burst onto 16 servers.
//!
//! Fault semantics (driven by [`crate::fault::FaultSchedule`] through the
//! file-system layers):
//! - [`IoNodeSim::submit`] returns a [`SubmitOutcome`] — queue-full and
//!   node-down rejections are explicit, never silently dropped;
//! - [`IoNodeSim::stall`] delays the in-service segment and blocks new
//!   starts for a while (transient server hiccup);
//! - [`IoNodeSim::crash`] loses the in-service and queued segments and
//!   rejects submissions until [`IoNodeSim::recover`];
//! - after [`crate::raid::Raid3::start_rebuild`], the node interleaves
//!   background rebuild chunks with foreground segments
//!   ([`IoNodeSim::maybe_start_rebuild`]): foreground has priority, rebuild
//!   fills idle gaps, and each in-flight chunk delays queued foreground work
//!   behind it.
//!
//! PDES ownership: an `IoNodeSim` (queue, array, stall/crash state) is
//! *shard-owned* — it is only ever mutated by its own node's events
//! (submissions routed to it, its completion timer, faults addressed to
//! it), all of which are service interactions and therefore run in the
//! sharded engine's serial commit phase (DESIGN.md §8). The interactions
//! that move work *between* nodes — buddy failover and stripe replay —
//! live in `fskit::pump`, classified there as boundary traffic.

use crate::raid::Raid3;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Queue discipline for pending segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// First-come-first-served (the PFS default; our baseline).
    Fifo,
    /// Circular SCAN: serve pending segments in ascending disk-offset order
    /// from the current head position, wrapping at the end — an ablation for
    /// DESIGN.md experiment A3.
    CScan,
    /// Shortest-seek-time-first: serve the pending segment closest to the
    /// current head position. Minimizes per-step seek cost at the risk of
    /// starving distant requests (which is why real systems prefer C-SCAN).
    Sstf,
}

/// One stripe-segment request at an I/O node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentReq {
    /// Caller-chosen id, returned on completion.
    pub id: u64,
    /// Byte offset on this I/O node's array.
    pub offset: u64,
    /// Segment length.
    pub bytes: u64,
    /// True for writes.
    pub write: bool,
    /// Skip the mechanical seek/rotation component (the segment is known to
    /// continue the previous one — used by aggregated sequential runs).
    pub sequential: bool,
    /// The segment was failed over from a crashed node and is served here by
    /// reconstructing from redundancy, at the degraded-read penalty.
    pub failover: bool,
}

/// Result of [`IoNodeSim::submit`]. `Started` means the node was idle and
/// the caller must (re-)arm its completion timer; `Queued` means an armed
/// timer already covers the in-service work; `Rejected` is explicit
/// backpressure the caller must handle (requeue, retry, or error) — never
/// ignore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "rejections are explicit backpressure; handle or propagate them"]
pub enum SubmitOutcome {
    /// Accepted and started immediately; arm a timer at
    /// [`IoNodeSim::next_done`].
    Started,
    /// Accepted and queued behind the in-service work.
    Queued,
    /// Not accepted; the segment is NOT enqueued.
    Rejected(RejectReason),
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The node has crashed and not yet recovered.
    Down,
    /// The pending queue is at its configured limit.
    QueueFull,
}

/// What the node is currently servicing.
#[derive(Debug, Clone, Copy)]
enum Served {
    /// A foreground stripe segment.
    App(SegmentReq),
    /// A background rebuild chunk of this many member-disk bytes.
    Rebuild { bytes: u64 },
}

/// Result of [`IoNodeSim::complete_head`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// A foreground segment finished.
    App {
        /// The caller-chosen id from [`SegmentReq::id`].
        id: u64,
        /// The array has lost redundancy (second member failure): the data
        /// for this segment could not actually be reconstructed.
        data_lost: bool,
    },
    /// A background rebuild chunk finished.
    Rebuild {
        /// Member bytes still to rebuild (0 = array healthy again).
        remaining: u64,
    },
}

/// An I/O node: a request queue over one RAID-3 array.
#[derive(Debug)]
pub struct IoNodeSim {
    array: Raid3,
    discipline: QueueDiscipline,
    /// Server CPU cost charged per segment.
    per_request: SimDuration,
    /// Currently serviced work and its completion time.
    busy: Option<(SimTime, Served)>,
    /// Queued segments with their arrival times.
    pending: VecDeque<(SegmentReq, SimTime)>,
    /// Completed-segment count (statistics).
    completed: u64,
    /// Sum of queueing delays (statistics).
    queued_total: SimDuration,
    /// Disk-head position after the most recently started segment.
    head: u64,
    /// Max queued segments before [`RejectReason::QueueFull`].
    queue_limit: usize,
    /// Max member bytes serviced per background rebuild chunk.
    rebuild_chunk: u64,
    /// Crashed and not yet recovered.
    down: bool,
    /// No new work starts before this time (transient stall).
    stalled_until: SimTime,
    /// Link-congestion multiplier on segment transfer time (1.0 = healthy
    /// links into this node; `LinkDegrade` fault events raise it).
    link_mult: f64,
    /// Rebuild bytes completed (statistics).
    rebuilt_bytes: u64,
    /// Rebuild chunks completed (statistics).
    rebuild_chunks: u64,
}

impl IoNodeSim {
    /// New idle I/O node.
    pub fn new(array: Raid3, discipline: QueueDiscipline, per_request: SimDuration) -> IoNodeSim {
        IoNodeSim {
            array,
            discipline,
            per_request,
            busy: None,
            pending: VecDeque::new(),
            completed: 0,
            queued_total: SimDuration::ZERO,
            head: 0,
            queue_limit: usize::MAX,
            rebuild_chunk: crate::calibration::fault_params().rebuild_chunk,
            down: false,
            stalled_until: SimTime::ZERO,
            link_mult: 1.0,
            rebuilt_bytes: 0,
            rebuild_chunks: 0,
        }
    }

    /// Set the link-congestion multiplier for traffic into this node
    /// (`1.0` restores healthy links). Applies to segments started after
    /// the call; in-flight work is unaffected, like a stall's tail.
    pub fn set_link_mult(&mut self, mult: f64) {
        assert!(
            mult >= 1.0 && mult.is_finite(),
            "link multiplier must be ≥ 1"
        );
        self.link_mult = mult;
    }

    /// Current link-congestion multiplier.
    pub fn link_mult(&self) -> f64 {
        self.link_mult
    }

    /// Mutable access to the underlying array (fault injection).
    pub fn array_mut(&mut self) -> &mut Raid3 {
        &mut self.array
    }

    /// Shared access to the underlying array.
    pub fn array(&self) -> &Raid3 {
        &self.array
    }

    /// Cap the pending queue; further submissions get
    /// [`RejectReason::QueueFull`].
    pub fn set_queue_limit(&mut self, limit: usize) {
        self.queue_limit = limit;
    }

    /// Set the background rebuild chunk size (member bytes per chunk).
    pub fn set_rebuild_chunk(&mut self, bytes: u64) {
        self.rebuild_chunk = bytes.max(1);
    }

    /// Submit a segment at time `now`.
    ///
    /// Contract: when this returns [`SubmitOutcome::Started`], the request
    /// has been parked as the in-service work and [`IoNodeSim::next_done`]
    /// reports its completion time — callers (e.g. `fskit`'s segment pump)
    /// rely on that pairing to arm their completion timers immediately
    /// after a `Started` return.
    pub fn submit(&mut self, now: SimTime, req: SegmentReq) -> SubmitOutcome {
        if self.down {
            return SubmitOutcome::Rejected(RejectReason::Down);
        }
        if self.busy.is_none() {
            self.start(now, req, now);
            SubmitOutcome::Started
        } else if self.pending.len() >= self.queue_limit {
            SubmitOutcome::Rejected(RejectReason::QueueFull)
        } else {
            self.pending.push_back((req, now));
            SubmitOutcome::Queued
        }
    }

    fn start(&mut self, now: SimTime, req: SegmentReq, arrived: SimTime) {
        self.queued_total += now.since(arrived);
        let mut mech = if req.sequential {
            if req.write {
                self.array.write_sequential(req.offset, req.bytes)
            } else {
                // Sequential read continuation: pure transfer.
                self.array.write_sequential(req.offset, req.bytes)
            }
        } else if req.write {
            self.array.write(req.offset, req.bytes)
        } else {
            self.array.read(req.offset, req.bytes)
        };
        if req.failover {
            // Served from redundancy on behalf of a crashed peer: pay the
            // reconstruction penalty regardless of direction.
            mech = mech.mul_f64(crate::calibration::raid_params().degraded_read_penalty);
        }
        if self.link_mult != 1.0 {
            // Congested edge links: delivery into the node is the binding
            // constraint, so the segment's service stretches by the link
            // multiplier. Healthy links (exactly 1.0) skip the float path.
            mech = mech.mul_f64(self.link_mult);
        }
        let begin = now.max(self.stalled_until);
        let done = begin + self.per_request + mech;
        self.head = req.offset + req.bytes;
        self.busy = Some((done, Served::App(req)));
    }

    /// Completion time of the in-service work (segment or rebuild chunk).
    pub fn next_done(&self) -> Option<SimTime> {
        self.busy.map(|(t, _)| t)
    }

    /// Complete the in-service work (must be called at its `next_done` time)
    /// and start the next pending segment per the discipline — or, with a
    /// rebuild armed and no foreground work, the next rebuild chunk.
    ///
    /// # Panics
    /// If the node is idle.
    pub fn complete_head(&mut self, now: SimTime) -> Completion {
        let (done, served) = self.busy.take().expect("complete_head on idle i/o node");
        debug_assert!(now >= done, "completing before service finished");
        let completion = match served {
            Served::App(req) => {
                self.completed += 1;
                Completion::App {
                    id: req.id,
                    data_lost: self.array.data_lost(),
                }
            }
            Served::Rebuild { bytes } => {
                self.rebuilt_bytes += bytes;
                self.rebuild_chunks += 1;
                self.array.rebuild_chunk_done();
                Completion::Rebuild {
                    remaining: self.array.rebuild_remaining(),
                }
            }
        };
        // Foreground first; rebuild traffic only fills idle gaps.
        match self
            .pick_next(self.head)
            .and_then(|i| self.pending.remove(i))
        {
            Some((next, arrived)) => self.start(now, next, arrived),
            None => self.start_rebuild_chunk(now),
        }
        completion
    }

    /// If the node is idle (and up), start a background rebuild chunk and
    /// return its completion time so the caller can arm a timer. No-op when
    /// no rebuild is pending.
    pub fn maybe_start_rebuild(&mut self, now: SimTime) -> Option<SimTime> {
        if self.down || self.busy.is_some() {
            return None;
        }
        self.start_rebuild_chunk(now);
        self.next_done()
    }

    fn start_rebuild_chunk(&mut self, now: SimTime) {
        if self.down {
            return;
        }
        if let Some((bytes, mech)) = self.array.rebuild_take_chunk(self.rebuild_chunk) {
            let begin = now.max(self.stalled_until);
            let done = begin + self.per_request + mech;
            self.busy = Some((done, Served::Rebuild { bytes }));
        }
    }

    /// Stall the node for `for_dur` starting at `now`: the in-service work
    /// finishes `for_dur` late and nothing new starts before the stall ends.
    /// Returns the delayed completion time (so the caller re-arms its timer)
    /// when work was in service.
    pub fn stall(&mut self, now: SimTime, for_dur: SimDuration) -> Option<SimTime> {
        self.stalled_until = self.stalled_until.max(now + for_dur);
        match &mut self.busy {
            Some((done, _)) => {
                *done += for_dur;
                Some(*done)
            }
            None => None,
        }
    }

    /// Crash the node: the in-service segment and everything queued are
    /// lost and returned to the caller (for retry / failover / loss
    /// accounting); an in-flight rebuild chunk is aborted back to the pool;
    /// submissions are rejected until [`IoNodeSim::recover`].
    pub fn crash(&mut self) -> Vec<SegmentReq> {
        self.down = true;
        let mut lost = Vec::new();
        match self.busy.take() {
            Some((_, Served::App(req))) => lost.push(req),
            Some((_, Served::Rebuild { bytes })) => self.array.rebuild_abort_chunk(bytes),
            None => {}
        }
        lost.extend(self.pending.drain(..).map(|(r, _)| r));
        lost
    }

    /// Bring a crashed node back up (empty queues; array state survives).
    pub fn recover(&mut self) {
        self.down = false;
    }

    /// Whether the node has crashed and not yet recovered.
    pub fn is_down(&self) -> bool {
        self.down
    }

    fn pick_next(&self, head_offset: u64) -> Option<usize> {
        if self.pending.is_empty() {
            return None;
        }
        match self.discipline {
            QueueDiscipline::Fifo => Some(0),
            QueueDiscipline::CScan => {
                // Smallest offset >= head, else wrap to smallest overall.
                let mut best_ge: Option<(u64, usize)> = None;
                let mut best_any: Option<(u64, usize)> = None;
                for (i, (r, _)) in self.pending.iter().enumerate() {
                    if best_any.is_none_or(|(o, _)| r.offset < o) {
                        best_any = Some((r.offset, i));
                    }
                    if r.offset >= head_offset && best_ge.is_none_or(|(o, _)| r.offset < o) {
                        best_ge = Some((r.offset, i));
                    }
                }
                best_ge.or(best_any).map(|(_, i)| i)
            }
            QueueDiscipline::Sstf => self
                .pending
                .iter()
                .enumerate()
                .min_by_key(|(_, (r, _))| r.offset.abs_diff(head_offset))
                .map(|(i, _)| i),
        }
    }

    /// Number of segments waiting (not counting the one in service).
    pub fn queue_depth(&self) -> usize {
        self.pending.len()
    }

    /// Whether work is in service.
    pub fn busy(&self) -> bool {
        self.busy.is_some()
    }

    /// Segments completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Total queueing delay accumulated by started segments.
    pub fn queued_total(&self) -> SimDuration {
        self.queued_total
    }

    /// Member bytes rebuilt so far (statistics).
    pub fn rebuilt_bytes(&self) -> u64 {
        self.rebuilt_bytes
    }

    /// Rebuild chunks completed so far (statistics).
    pub fn rebuild_chunks(&self) -> u64 {
        self.rebuild_chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskParams;
    use crate::raid::RaidParams;

    fn node(discipline: QueueDiscipline) -> IoNodeSim {
        IoNodeSim::new(
            Raid3::new(DiskParams::default(), RaidParams::default(), 3),
            discipline,
            SimDuration::from_millis(1),
        )
    }

    fn seg(id: u64, offset: u64, bytes: u64) -> SegmentReq {
        SegmentReq {
            id,
            offset,
            bytes,
            write: false,
            sequential: false,
            failover: false,
        }
    }

    fn complete_id(n: &mut IoNodeSim, now: SimTime) -> u64 {
        match n.complete_head(now) {
            Completion::App { id, .. } => id,
            other => panic!("expected app completion, got {other:?}"),
        }
    }

    #[test]
    fn idle_submit_starts_immediately() {
        let mut n = node(QueueDiscipline::Fifo);
        assert_eq!(
            n.submit(SimTime(0), seg(1, 0, 4096)),
            SubmitOutcome::Started
        );
        assert!(n.busy());
        let done = n.next_done().unwrap();
        assert!(done > SimTime(0));
        assert_eq!(complete_id(&mut n, done), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut n = node(QueueDiscipline::Fifo);
        assert_eq!(
            n.submit(SimTime(0), seg(1, 500 << 20, 4096)),
            SubmitOutcome::Started
        );
        assert_eq!(
            n.submit(SimTime(0), seg(2, 100 << 20, 4096)),
            SubmitOutcome::Queued
        );
        assert_eq!(
            n.submit(SimTime(0), seg(3, 900 << 20, 4096)),
            SubmitOutcome::Queued
        );
        let mut order = Vec::new();
        while let Some(t) = n.next_done() {
            order.push(complete_id(&mut n, t));
        }
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(n.completed(), 3);
        assert_eq!(n.queue_depth(), 0);
    }

    #[test]
    fn cscan_orders_by_offset_from_head() {
        let mut n = node(QueueDiscipline::CScan);
        let _ = n.submit(SimTime(0), seg(1, 500 << 20, 4096));
        let _ = n.submit(SimTime(0), seg(2, 100 << 20, 4096));
        let _ = n.submit(SimTime(0), seg(3, 900 << 20, 4096));
        let _ = n.submit(SimTime(0), seg(4, 600 << 20, 4096));
        let mut order = Vec::new();
        while let Some(t) = n.next_done() {
            order.push(complete_id(&mut n, t));
        }
        // Head ends segment 1 around 500 MB: ascending from there (600, 900),
        // then wrap to 100.
        assert_eq!(order, vec![1, 4, 3, 2]);
    }

    #[test]
    fn cscan_beats_fifo_on_scattered_bursts() {
        // A burst of offset-scattered segments: C-SCAN should finish no later
        // than FIFO (usually strictly earlier thanks to shorter seeks).
        let offs: Vec<u64> = (0..32).map(|i| ((i * 37) % 64) << 24).collect();
        let run = |d| {
            let mut n = node(d);
            for (i, &o) in offs.iter().enumerate() {
                let _ = n.submit(SimTime(0), seg(i as u64, o, 65536));
            }
            let mut last = SimTime(0);
            while let Some(t) = n.next_done() {
                n.complete_head(t);
                last = t;
            }
            last
        };
        let fifo = run(QueueDiscipline::Fifo);
        let cscan = run(QueueDiscipline::CScan);
        assert!(cscan <= fifo, "cscan {cscan} vs fifo {fifo}");
    }

    #[test]
    fn sstf_picks_nearest_offset() {
        let mut n = node(QueueDiscipline::Sstf);
        let _ = n.submit(SimTime(0), seg(1, 500 << 20, 4096));
        let _ = n.submit(SimTime(0), seg(2, 100 << 20, 4096));
        let _ = n.submit(SimTime(0), seg(3, 490 << 20, 4096));
        let _ = n.submit(SimTime(0), seg(4, 900 << 20, 4096));
        let mut order = Vec::new();
        while let Some(t) = n.next_done() {
            order.push(complete_id(&mut n, t));
        }
        // Head ends near 500 MB: nearest is 490, then 900 vs 100 -> 900
        // (410 MB away vs 390... 490->100 is 390, 490->900 is 410): 100 next.
        assert_eq!(order[0], 1);
        assert_eq!(order[1], 3);
        assert_eq!(order, vec![1, 3, 2, 4]);
    }

    #[test]
    fn queueing_delay_accounted() {
        let mut n = node(QueueDiscipline::Fifo);
        let _ = n.submit(SimTime(0), seg(1, 0, 1 << 20));
        let _ = n.submit(SimTime(0), seg(2, 0, 1 << 20));
        let t1 = n.next_done().unwrap();
        n.complete_head(t1);
        assert_eq!(n.queued_total(), t1.since(SimTime(0)));
    }

    #[test]
    #[should_panic(expected = "idle")]
    fn complete_on_idle_panics() {
        let mut n = node(QueueDiscipline::Fifo);
        n.complete_head(SimTime(0));
    }

    #[test]
    fn queue_limit_rejections_are_explicit() {
        let mut n = node(QueueDiscipline::Fifo);
        n.set_queue_limit(1);
        assert_eq!(
            n.submit(SimTime(0), seg(1, 0, 4096)),
            SubmitOutcome::Started
        );
        assert_eq!(n.submit(SimTime(0), seg(2, 0, 4096)), SubmitOutcome::Queued);
        assert_eq!(
            n.submit(SimTime(0), seg(3, 0, 4096)),
            SubmitOutcome::Rejected(RejectReason::QueueFull)
        );
        // The rejected segment was not enqueued.
        assert_eq!(n.queue_depth(), 1);
    }

    #[test]
    fn crash_loses_inflight_and_queued_then_recover_accepts() {
        let mut n = node(QueueDiscipline::Fifo);
        let _ = n.submit(SimTime(0), seg(1, 0, 4096));
        let _ = n.submit(SimTime(0), seg(2, 0, 4096));
        let lost = n.crash();
        assert_eq!(lost.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2]);
        assert!(n.is_down());
        assert!(!n.busy());
        assert_eq!(n.next_done(), None);
        assert_eq!(
            n.submit(SimTime(10), seg(3, 0, 4096)),
            SubmitOutcome::Rejected(RejectReason::Down)
        );
        n.recover();
        assert_eq!(
            n.submit(SimTime(20), seg(3, 0, 4096)),
            SubmitOutcome::Started
        );
    }

    #[test]
    fn stall_delays_completion_and_next_start() {
        let mut n = node(QueueDiscipline::Fifo);
        let _ = n.submit(SimTime(0), seg(1, 0, 4096));
        let before = n.next_done().unwrap();
        let delay = SimDuration::from_millis(40);
        let after = n.stall(SimTime(0), delay).unwrap();
        assert_eq!(after, before + delay);
        assert_eq!(n.next_done(), Some(after));
        // A stale timer at the original time must see nothing due.
        assert!(n.next_done().unwrap() > before);
        n.complete_head(after);
        // An idle-node stall blocks the next start until it expires.
        let mut m = node(QueueDiscipline::Fifo);
        assert_eq!(m.stall(SimTime(0), delay), None);
        let _ = m.submit(SimTime(0), seg(9, 0, 4096));
        assert!(m.next_done().unwrap() >= SimTime(0) + delay);
    }

    #[test]
    fn rebuild_fills_idle_gaps_and_yields_to_foreground() {
        let mut n = node(QueueDiscipline::Fifo);
        n.set_rebuild_chunk(256 << 20);
        n.array_mut().fail_disk(0).unwrap();
        n.array_mut().start_rebuild().unwrap();
        let t0 = n.maybe_start_rebuild(SimTime(0)).unwrap();
        assert!(n.busy());
        // Foreground work queues behind the in-flight chunk...
        assert_eq!(n.submit(SimTime(0), seg(1, 0, 4096)), SubmitOutcome::Queued);
        // ...and preempts further rebuild chunks at the next completion.
        match n.complete_head(t0) {
            Completion::Rebuild { remaining } => assert!(remaining > 0),
            other => panic!("expected rebuild completion, got {other:?}"),
        }
        let t1 = n.next_done().unwrap();
        assert_eq!(
            n.complete_head(t1),
            Completion::App {
                id: 1,
                data_lost: false
            }
        );
        // Idle again: the next completion is rebuild traffic.
        assert!(n.busy(), "rebuild resumes in the idle gap");
        let mut chunks = n.rebuild_chunks();
        while n.array().degraded() {
            let t = n.next_done().unwrap();
            n.complete_head(t);
            chunks += 1;
        }
        assert_eq!(n.rebuild_chunks(), chunks);
        assert_eq!(n.rebuilt_bytes(), DiskParams::default().capacity);
        assert!(!n.array().degraded(), "rebuild completion heals the array");
    }

    #[test]
    fn failover_segments_pay_reconstruction_penalty() {
        let mut a = node(QueueDiscipline::Fifo);
        let mut b = node(QueueDiscipline::Fifo);
        let _ = a.submit(SimTime(0), seg(1, 0, 1 << 20));
        let mut fo = seg(1, 0, 1 << 20);
        fo.failover = true;
        let _ = b.submit(SimTime(0), fo);
        assert!(b.next_done().unwrap() > a.next_done().unwrap());
    }

    #[test]
    fn link_congestion_stretches_new_segments_only() {
        let mut a = node(QueueDiscipline::Fifo);
        let mut b = node(QueueDiscipline::Fifo);
        b.set_link_mult(4.0);
        let _ = a.submit(SimTime(0), seg(1, 0, 1 << 20));
        let _ = b.submit(SimTime(0), seg(1, 0, 1 << 20));
        assert!(b.next_done().unwrap() > a.next_done().unwrap());
        // In-flight work is unaffected by a multiplier change...
        let mut c = node(QueueDiscipline::Fifo);
        let _ = c.submit(SimTime(0), seg(1, 0, 1 << 20));
        let before = c.next_done().unwrap();
        c.set_link_mult(8.0);
        assert_eq!(c.next_done().unwrap(), before);
        // ...and healing restores healthy service exactly.
        c.complete_head(before);
        c.set_link_mult(1.0);
        let _ = c.submit(before, seg(2, 1 << 20, 1 << 20));
        let healthy = {
            let mut d = node(QueueDiscipline::Fifo);
            let _ = d.submit(SimTime(0), seg(1, 0, 1 << 20));
            let t = d.next_done().unwrap();
            d.complete_head(t);
            let _ = d.submit(t, seg(2, 1 << 20, 1 << 20));
            d.next_done().unwrap().since(t)
        };
        assert_eq!(c.next_done().unwrap().since(before), healthy);
    }

    #[test]
    #[should_panic(expected = "link multiplier")]
    fn link_mult_rejects_sub_unity() {
        node(QueueDiscipline::Fifo).set_link_mult(0.5);
    }
}

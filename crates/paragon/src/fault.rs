//! Deterministic fault-injection schedules.
//!
//! The CCSF Paragon's I/O nodes each hosted a RAID-3 array (§3.2), so the
//! machine tolerated single-disk failures by design — but the paper's
//! workloads were measured on a healthy machine, and any robustness claim
//! about the reproduction has to come from *controlled* degradation. A
//! [`FaultSchedule`] is a time-ordered list of [`FaultEvent`]s (disk
//! failures, timed rebuild starts, I/O-node stalls and crashes) that the
//! file-system layers inject through the DES timer queue, so a faulted run
//! is exactly as reproducible as a healthy one: same schedule, same seed,
//! same trace, bit for bit.
//!
//! Ordering contract: events apply in `(time, insertion sequence)` order.
//! [`FaultSchedule::merge`] preserves that contract across schedules built
//! independently (stable merge by time; ties resolve in favor of `self`'s
//! events, then `other`'s, each in their original relative order).

use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What happens to the target I/O node when a [`FaultEvent`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Fail one member disk (data or parity) of the node's RAID-3 array.
    /// A second `DiskFail` on the same array marks it data-lost.
    DiskFail {
        /// Member index, `0..=data_disks` (the last index is parity).
        disk: u32,
    },
    /// Start a timed rebuild of the failed member: the node generates
    /// background rebuild traffic that competes with foreground segments
    /// until the whole member has been re-written.
    DiskRepair,
    /// The node stops making progress for `for_dur`: the in-service segment
    /// (if any) finishes late, and nothing new starts before the stall ends.
    NodeStall {
        /// Length of the stall.
        for_dur: SimDuration,
    },
    /// The node crashes: the in-service and queued segments are lost and the
    /// node rejects submissions until a `NodeRecover` event.
    NodeCrash,
    /// The node comes back (empty queues; the array state survives).
    NodeRecover,
    /// Congest the mesh links of the region serving the target I/O node:
    /// link bandwidth is divided by `bw_div` and hop latency multiplied by
    /// `lat_mult` until a `LinkHeal` on the same region. Multiple degrades
    /// compose by taking the worse multiplier.
    LinkDegrade {
        /// Bandwidth divisor, ≥ 1.
        bw_div: f64,
        /// Hop-latency multiplier, ≥ 1.
        lat_mult: f64,
    },
    /// Restore the region's links to healthy bandwidth and latency.
    LinkHeal,
    /// The metadata replica (the event's `io_node` field is the replica
    /// index: 0 = primary, 1 = buddy) stops serving for `for_dur`; queued
    /// RPCs complete late but never fail.
    MetaStall {
        /// Length of the stall.
        for_dur: SimDuration,
    },
    /// The metadata replica crashes: RPCs fail over to the surviving buddy;
    /// with both replicas down they park with bounded retry and surface
    /// `IoFault::Unavailable` when the retries are exhausted.
    MetaCrash,
    /// The metadata replica comes back.
    MetaRecover,
}

/// Which layer of the machine a [`FaultKind`] strikes. The chaos campaign
/// aggregates availability and latency per domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultDomain {
    /// RAID member-disk failures and rebuilds.
    Disk,
    /// Whole-I/O-node stalls, crashes, recoveries.
    Node,
    /// Mesh-link congestion (bandwidth/latency degradation).
    Link,
    /// Metadata-server outages and stalls.
    Meta,
}

impl FaultDomain {
    /// Stable short label (`disk`/`node`/`link`/`meta`) for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultDomain::Disk => "disk",
            FaultDomain::Node => "node",
            FaultDomain::Link => "link",
            FaultDomain::Meta => "meta",
        }
    }
}

impl FaultKind {
    /// The fault domain this kind belongs to.
    pub fn domain(&self) -> FaultDomain {
        match self {
            FaultKind::DiskFail { .. } | FaultKind::DiskRepair => FaultDomain::Disk,
            FaultKind::NodeStall { .. } | FaultKind::NodeCrash | FaultKind::NodeRecover => {
                FaultDomain::Node
            }
            FaultKind::LinkDegrade { .. } | FaultKind::LinkHeal => FaultDomain::Link,
            FaultKind::MetaStall { .. } | FaultKind::MetaCrash | FaultKind::MetaRecover => {
                FaultDomain::Meta
            }
        }
    }
}

/// Number of metadata replicas the meta fault domain targets (primary +
/// buddy); `Meta*` events address them through the event's `io_node` field.
pub const META_REPLICAS: u32 = 2;

/// One scheduled fault: `kind` applied to `io_node` at absolute time `at`.
///
/// The `io_node` field is the target index *within the kind's domain*:
/// an I/O-node index for disk and node kinds, a link-region index (one
/// region per I/O node's edge links) for link kinds, and a metadata replica
/// index (`0..`[`META_REPLICAS`]) for meta kinds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Absolute simulation time at which the fault fires.
    pub at: SimTime,
    /// Target index within the kind's domain (see the struct docs).
    pub io_node: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Empty schedule (equivalent to a healthy run).
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events in application order: sorted by time, ties in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Append an event, keeping the application-order invariant (stable
    /// insertion: the new event fires after existing events at the same
    /// time).
    pub fn push(&mut self, ev: FaultEvent) -> &mut Self {
        let at = ev.at;
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, ev);
        self
    }

    /// Schedule a member-disk failure.
    pub fn disk_fail(&mut self, at: SimTime, io_node: u32, disk: u32) -> &mut Self {
        self.push(FaultEvent {
            at,
            io_node,
            kind: FaultKind::DiskFail { disk },
        })
    }

    /// Schedule the start of a timed rebuild on a degraded array.
    pub fn disk_repair(&mut self, at: SimTime, io_node: u32) -> &mut Self {
        self.push(FaultEvent {
            at,
            io_node,
            kind: FaultKind::DiskRepair,
        })
    }

    /// Schedule a node stall of length `for_dur`.
    pub fn node_stall(&mut self, at: SimTime, io_node: u32, for_dur: SimDuration) -> &mut Self {
        self.push(FaultEvent {
            at,
            io_node,
            kind: FaultKind::NodeStall { for_dur },
        })
    }

    /// Schedule a node crash.
    pub fn node_crash(&mut self, at: SimTime, io_node: u32) -> &mut Self {
        self.push(FaultEvent {
            at,
            io_node,
            kind: FaultKind::NodeCrash,
        })
    }

    /// Schedule a node recovery.
    pub fn node_recover(&mut self, at: SimTime, io_node: u32) -> &mut Self {
        self.push(FaultEvent {
            at,
            io_node,
            kind: FaultKind::NodeRecover,
        })
    }

    /// Schedule link congestion on `region` (the edge links serving I/O
    /// node `region`): bandwidth ÷ `bw_div`, hop latency × `lat_mult`.
    pub fn link_degrade(
        &mut self,
        at: SimTime,
        region: u32,
        bw_div: f64,
        lat_mult: f64,
    ) -> &mut Self {
        assert!(
            bw_div >= 1.0 && bw_div.is_finite() && lat_mult >= 1.0 && lat_mult.is_finite(),
            "link degradation multipliers must be finite and ≥ 1 (got ÷{bw_div}, ×{lat_mult})"
        );
        self.push(FaultEvent {
            at,
            io_node: region,
            kind: FaultKind::LinkDegrade { bw_div, lat_mult },
        })
    }

    /// Schedule the region's links back to healthy.
    pub fn link_heal(&mut self, at: SimTime, region: u32) -> &mut Self {
        self.push(FaultEvent {
            at,
            io_node: region,
            kind: FaultKind::LinkHeal,
        })
    }

    /// Schedule a metadata-replica stall (`replica` 0 = primary, 1 = buddy).
    pub fn meta_stall(&mut self, at: SimTime, replica: u32, for_dur: SimDuration) -> &mut Self {
        self.push(FaultEvent {
            at,
            io_node: replica,
            kind: FaultKind::MetaStall { for_dur },
        })
    }

    /// Schedule a metadata-replica crash.
    pub fn meta_crash(&mut self, at: SimTime, replica: u32) -> &mut Self {
        self.push(FaultEvent {
            at,
            io_node: replica,
            kind: FaultKind::MetaCrash,
        })
    }

    /// Schedule a metadata-replica recovery.
    pub fn meta_recover(&mut self, at: SimTime, replica: u32) -> &mut Self {
        self.push(FaultEvent {
            at,
            io_node: replica,
            kind: FaultKind::MetaRecover,
        })
    }

    /// Stable merge of two schedules: the result applies every event of both
    /// in time order; at equal times `self`'s events fire first, then
    /// `other`'s, each group keeping its original relative order.
    pub fn merge(&self, other: &FaultSchedule) -> FaultSchedule {
        let mut events = Vec::with_capacity(self.events.len() + other.events.len());
        let (mut a, mut b) = (
            self.events.iter().peekable(),
            other.events.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.at <= y.at {
                        events.push(*a.next().unwrap());
                    } else {
                        events.push(*b.next().unwrap());
                    }
                }
                (Some(_), None) => events.push(*a.next().unwrap()),
                (None, Some(_)) => events.push(*b.next().unwrap()),
                (None, None) => break,
            }
        }
        FaultSchedule { events }
    }

    /// Seeded schedule of `count` transient node stalls scattered uniformly
    /// over `(0, horizon)` across `io_nodes` nodes — a reproducible source of
    /// "background flakiness" for robustness sweeps. Same seed, same
    /// schedule.
    pub fn scattered_stalls(
        seed: u64,
        io_nodes: u32,
        count: usize,
        horizon: SimDuration,
        stall: SimDuration,
    ) -> FaultSchedule {
        assert!(io_nodes > 0, "need at least one i/o node");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = FaultSchedule::new();
        for _ in 0..count {
            let at = SimTime(rng.random_range(1..horizon.nanos().max(2)));
            let node = rng.random_range(0..io_nodes as u64) as u32;
            s.node_stall(at, node, stall);
        }
        s
    }

    /// The canned single-fault schedule used by the X4 "degraded" scenario:
    /// fail member `disk` on every node at `at`.
    pub fn all_disks_fail(at: SimTime, io_nodes: u32, disk: u32) -> FaultSchedule {
        let mut s = FaultSchedule::new();
        for io in 0..io_nodes {
            s.disk_fail(at, io, disk);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_keeps_time_order_with_stable_ties() {
        let mut s = FaultSchedule::new();
        s.node_crash(SimTime(50), 1);
        s.disk_fail(SimTime(10), 0, 0);
        s.node_recover(SimTime(50), 2); // same time as the crash: fires after
        s.disk_repair(SimTime(30), 0);
        let times: Vec<u64> = s.events().iter().map(|e| e.at.0).collect();
        assert_eq!(times, vec![10, 30, 50, 50]);
        assert_eq!(s.events()[2].kind, FaultKind::NodeCrash);
        assert_eq!(s.events()[3].kind, FaultKind::NodeRecover);
    }

    #[test]
    fn merge_is_stable_and_complete() {
        let mut a = FaultSchedule::new();
        a.disk_fail(SimTime(10), 0, 0).node_crash(SimTime(20), 0);
        let mut b = FaultSchedule::new();
        b.node_stall(SimTime(10), 1, SimDuration::from_millis(5))
            .node_recover(SimTime(40), 0);
        let m = a.merge(&b);
        assert_eq!(m.len(), 4);
        let times: Vec<u64> = m.events().iter().map(|e| e.at.0).collect();
        assert_eq!(times, vec![10, 10, 20, 40]);
        // Tie at t=10 resolves in favor of `a`.
        assert_eq!(m.events()[0].kind, FaultKind::DiskFail { disk: 0 });
    }

    #[test]
    fn new_domains_classify_and_keep_time_order() {
        let mut s = FaultSchedule::new();
        s.meta_crash(SimTime(40), 0)
            .link_degrade(SimTime(10), 2, 4.0, 2.0)
            .meta_recover(SimTime(60), 0)
            .link_heal(SimTime(50), 2)
            .meta_stall(SimTime(20), 1, SimDuration::from_millis(5));
        let times: Vec<u64> = s.events().iter().map(|e| e.at.0).collect();
        assert_eq!(times, vec![10, 20, 40, 50, 60]);
        let domains: Vec<FaultDomain> = s.events().iter().map(|e| e.kind.domain()).collect();
        assert_eq!(
            domains,
            vec![
                FaultDomain::Link,
                FaultDomain::Meta,
                FaultDomain::Meta,
                FaultDomain::Link,
                FaultDomain::Meta,
            ]
        );
        assert_eq!(FaultKind::DiskFail { disk: 1 }.domain(), FaultDomain::Disk);
        assert_eq!(FaultKind::NodeCrash.domain(), FaultDomain::Node);
        assert_eq!(FaultDomain::Link.label(), "link");
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn link_degrade_rejects_sub_unity_multipliers() {
        FaultSchedule::new().link_degrade(SimTime(1), 0, 0.5, 1.0);
    }

    #[test]
    fn scattered_stalls_is_seed_deterministic() {
        let h = SimDuration::from_millis(500);
        let d = SimDuration::from_millis(3);
        let a = FaultSchedule::scattered_stalls(9, 4, 16, h, d);
        let b = FaultSchedule::scattered_stalls(9, 4, 16, h, d);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::scattered_stalls(10, 4, 16, h, d));
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
    }
}

//! # paragon-sim — a discrete-event model of the Intel Paragon XP/S
//!
//! The paper measured its applications on the Intel Paragon XP/S at the
//! Caltech Concurrent Supercomputing Facility: 512 compute nodes and 16 I/O
//! nodes, each I/O node hosting a RAID-3 array of five 1.2 GB disks, with
//! Intel's PFS striping files in 64 KB units across the I/O nodes (§3.2). We
//! have no Paragon; this crate is its substitute — a deterministic
//! discrete-event simulator of exactly the machine features the paper's
//! observations depend on:
//!
//! * an [`engine`] that executes *node programs* ([`program`]) — state
//!   machines yielding compute, I/O, barrier, message, and collective steps —
//!   in global simulated-time order;
//! * a 2-D [`mesh`] interconnect cost model (hop latency + bandwidth);
//! * a mechanical [`disk`] model (seek distance, rotational latency,
//!   transfer time) and a [`raid`] level-3 array model with parity and
//!   degraded-mode reconstruction;
//! * an [`ionode`] request-queue model (FIFO or C-SCAN) over one array;
//! * [`machine`] configurations, including the Caltech system preset, with
//!   every tunable documented in [`calibration`].
//!
//! The file-system semantics (striping, access modes, file pointers) are NOT
//! here — they live in `sio-pfs`, which implements this crate's
//! [`engine::IoService`] trait. The layering mirrors the real system: this
//! crate is the hardware plus message-passing kernel; `sio-pfs` is PFS.
//!
//! Determinism: the engine orders events by `(time, sequence)`; programs and
//! services may use randomness only through seeded generators. The same
//! configuration always yields bit-identical traces.

pub mod calibration;
pub mod disk;
pub mod engine;
pub mod fault;
pub mod ionode;
pub mod machine;
pub mod mesh;
pub mod pdes;
pub mod program;
pub mod raid;
pub mod time;

pub use engine::{
    Engine, EnginePerf, EngineReport, HangReason, HangReport, IoService, Sched, DEFAULT_WATCHDOG,
};
pub use fault::{FaultDomain, FaultEvent, FaultKind, FaultSchedule, META_REPLICAS};
pub use machine::MachineConfig;
pub use mesh::{LinkQuality, LinkState};
pub use pdes::{configured_shards, default_shards, set_shards, ShardedEngine};
pub use program::{GroupId, IoFault, IoRequest, IoResult, IoVerb, NodeProgram, Resume, Step};
pub use time::{SimDuration, SimTime};

/// Node identifier within a machine (compute nodes are `0..compute_nodes`).
pub type NodeId = u32;

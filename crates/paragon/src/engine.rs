//! Deterministic discrete-event engine.
//!
//! The engine owns the event queue, the node programs, and one
//! [`IoService`] (the file-system model). It executes node programs in
//! global simulated-time order with deterministic tie-breaking (FIFO by
//! event sequence number), handles blocking and unblocking for every
//! [`Step`] kind (compute, sync/async I/O, barriers, eager sends, blocking
//! receives, broadcasts), and routes I/O calls to the service, which answers
//! by scheduling completions and private timers through [`Sched`].
//!
//! The event queue is a set of *lanes* (`EventLane`), each an independent
//! `(time, seq)` heap plus the slab holding its payloads. Run serially the
//! engine has a single lane; the sharded front end (`crate::pdes`)
//! reconfigures it into one lane per mesh region — holding exactly that
//! region's node-resume traffic — plus a trailing *boundary* lane for
//! everything with cross-region reach (I/O completions, service timers).
//! The globally next event is the minimum `(time, seq)` across lane heads,
//! so lane layout is invisible in event order; what it buys is that a
//! *closed* window (every queued event below the horizon is a node resume,
//! and every pre-stepped transition chain stays inside its region) can be
//! committed as one batched per-lane splice (`Engine::apply_closed_window`)
//! instead of one serial pop/dispatch/push per event.
//!
//! The engine knows nothing about files, striping, or access modes: that is
//! the service's business. The service knows nothing about blocking: that is
//! the engine's.

use crate::mesh::{CommCosts, Mesh};
use crate::program::{GroupId, IoRequest, IoResult, IoToken, NodeProgram, Resume, Step};
use crate::time::{SimDuration, SimTime};
use crate::NodeId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Range;

/// The file-system side of the simulation.
///
/// `submit` is called once per I/O step; the service must eventually call
/// [`Sched::complete_io`] with the same token (possibly scheduling private
/// timers first and finishing the work in [`IoService::on_timer`]).
pub trait IoService {
    /// Handle an I/O call issued by `node` at time `now`. `is_async` is true
    /// when the call came from [`Step::IoAsync`] (the service may account for
    /// it differently, e.g. tracing an `AsynchRead` instead of a `Read`).
    fn submit(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        is_async: bool,
        sched: &mut Sched,
    );

    /// A timer armed via [`Sched::timer`] fired.
    fn on_timer(&mut self, now: SimTime, timer: u64, sched: &mut Sched);

    /// The run is about to start (time zero, before any node resumes): arm
    /// any standing timers the service needs — e.g. absolute-time fault
    /// injection from a [`crate::fault::FaultSchedule`]. Default: nothing.
    fn on_start(&mut self, sched: &mut Sched) {
        let _ = sched;
    }

    /// Client-side cost of *issuing* an asynchronous operation. The issuing
    /// node resumes after this long; the operation itself completes whenever
    /// the service says so.
    fn issue_cost(&self, node: NodeId, req: &IoRequest) -> SimDuration {
        let _ = (node, req);
        SimDuration::ZERO
    }

    /// Notification that `node` blocked on an asynchronous operation against
    /// `file` from `wait_start` to `wait_end` — the `iowait` interval the
    /// paper reports for RENDER (Table 3). Default: ignore.
    fn on_iowait(&mut self, node: NodeId, file: u32, wait_start: SimTime, wait_end: SimTime) {
        let _ = (node, file, wait_start, wait_end);
    }

    /// The run finished at `now`: flush any buffered state (write-behind
    /// buffers, open summaries). Default: nothing.
    fn on_run_end(&mut self, now: SimTime) {
        let _ = now;
    }
}

/// Buffered scheduling interface handed to the service.
#[derive(Debug, Default)]
pub struct Sched {
    completions: Vec<(IoToken, SimTime, IoResult)>,
    timers: Vec<(SimTime, u64)>,
}

impl Sched {
    /// An empty scheduling buffer. Wrapper services (e.g. a burst-log tier
    /// fronting an inner backend) hand a private `Sched` to the wrapped
    /// service so they can inspect and filter its completions before
    /// forwarding them to the engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Complete the I/O identified by `token` at time `at`.
    pub fn complete_io(&mut self, token: IoToken, at: SimTime, result: IoResult) {
        self.completions.push((token, at, result));
    }

    /// Arm a service-private timer that fires [`IoService::on_timer`] at
    /// `at` with the given timer id.
    pub fn timer(&mut self, at: SimTime, timer: u64) {
        self.timers.push((at, timer));
    }

    /// Drain the buffered completions (wrapper-service filtering hook).
    pub fn take_completions(&mut self) -> Vec<(IoToken, SimTime, IoResult)> {
        std::mem::take(&mut self.completions)
    }

    /// Drain the buffered timers (wrapper-service filtering hook).
    pub fn take_timers(&mut self) -> Vec<(SimTime, u64)> {
        std::mem::take(&mut self.timers)
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    Resume(NodeId, Resume),
    IoComplete(IoToken, IoResult),
    ServiceTimer(u64),
}

#[derive(Debug, Clone, Copy)]
enum TokenState {
    /// Node blocked on a synchronous call.
    Sync(NodeId, u32),
    /// Async in flight, nobody waiting yet.
    AsyncPending(NodeId, u32),
    /// Async in flight, issuer blocked in IoWait since the given time.
    AsyncWaited(NodeId, u32, SimTime),
    /// Async completed, result parked until the issuer waits (file id kept
    /// for the `on_iowait` notification).
    AsyncDone(IoResult, u32),
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: Vec<NodeId>,
}

#[derive(Debug, Default)]
struct BroadcastState {
    arrived: Vec<NodeId>,
    bytes: u64,
}

/// One eager-message channel: messages from one sender to one receiver under
/// one tag. Channels live in a per-receiver table, located through a keyed
/// slot index ([`ChanIndex`]) — many-to-one patterns (gateways, collectives)
/// give busy receivers hundreds of channels, so a linear scan would be
/// quadratic in traffic.
#[derive(Debug, Default)]
struct Channel {
    /// FIFO of in-flight messages: (arrival time, bytes).
    queue: VecDeque<(SimTime, u64)>,
    /// Receiver blocked on this channel (at most one: receives are issued by
    /// the receiving node itself).
    waiting: bool,
}

/// Single-word mixer for the channel slot index: `(from, tag)` packs into
/// one `u64`, hashed with a multiply + xor-shift. Fixed seed, so fully
/// deterministic (the index is only ever probed by key, never iterated).
#[derive(Default)]
struct ChanHash(u64);

impl Hasher for ChanHash {
    fn write(&mut self, _: &[u8]) {
        unreachable!("channel keys hash via write_u64");
    }

    fn write_u64(&mut self, key: u64) {
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Per-receiver map from packed `(from, tag)` to slot in the channel table.
type ChanIndex = HashMap<u64, u32, BuildHasherDefault<ChanHash>>;

/// Hot-path counters the engine maintains for free (plain integer updates on
/// state it already touches); read out once per run via [`Engine::perf`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnginePerf {
    /// Total events processed.
    pub events: u64,
    /// Peak size of the event heap.
    pub heap_peak: u64,
    /// Peak number of buffered (sent, not yet received) eager messages.
    pub channel_peak: u64,
}

/// Default liveness-watchdog deadline: 10⁷ simulated seconds, orders of
/// magnitude beyond any legitimate run in this repository, so arming it
/// can never change a healthy result — it only converts an otherwise
/// unbounded stuck run into a terminating one with a typed [`HangReport`].
pub const DEFAULT_WATCHDOG: SimTime = SimTime(10_000_000 * 1_000_000_000);

/// Why the liveness watchdog declared a run stuck rather than finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HangReason {
    /// The event heap drained with programs unfinished — a deadlock or
    /// missing partner: no future event can wake the parked nodes.
    Exhausted,
    /// Simulated time crossed the watchdog deadline with programs still
    /// unfinished — a livelock (e.g. an unbounded retry loop) that keeps
    /// generating events without ever finishing.
    DeadlineExceeded {
        /// The armed deadline that was crossed.
        deadline: SimTime,
    },
}

/// Typed diagnosis of a stuck run, produced when the liveness watchdog
/// (see [`Engine::set_watchdog`]) distinguishes "stuck" from "finished":
/// which nodes are parked, which I/O requests never completed, and how many
/// service timers were abandoned in the heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// Simulated time at which the hang was declared.
    pub at: SimTime,
    /// What tripped the watchdog.
    pub reason: HangReason,
    /// Nodes whose programs never reached `Done`.
    pub parked_nodes: Vec<NodeId>,
    /// I/O tokens still in flight (issued but never completed).
    pub pending_requests: Vec<IoToken>,
    /// Service timers abandoned unprocessed in the event heap.
    pub killed_timers: u64,
}

/// Final run statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineReport {
    /// Time of the last processed event.
    pub wall: SimTime,
    /// Total events processed.
    pub events: u64,
    /// Nodes whose programs reached `Done`.
    pub nodes_done: u32,
    /// Nodes still blocked when the event queue drained (deadlock or missing
    /// partner); empty on a clean run.
    pub blocked: Vec<NodeId>,
    /// Liveness-watchdog diagnosis; `Some` only when a watchdog was armed
    /// and the run was declared stuck rather than finished or crash-cut.
    pub hang: Option<HangReport>,
}

impl EngineReport {
    /// True when every node finished and no watchdog tripped.
    pub fn clean(&self) -> bool {
        self.blocked.is_empty() && self.hang.is_none()
    }
}

/// Hard safety limit on processed events (runaway-program backstop).
const MAX_EVENTS: u64 = 2_000_000_000;

/// Minimum per-window op count (pops + splices) before the closed-window
/// surgery fans out across worker threads; below this the per-thread spawn
/// cost dwarfs the heap work.
const PAR_SURGERY_MIN: usize = 256;

/// One event lane: a `(time, seq)`-ordered heap plus the slab holding its
/// payloads (the heap entry carries the slot index). Lanes are the unit of
/// shard ownership — each holds state no other lane's events can touch, so
/// the closed-window splice may operate on all lanes concurrently.
#[derive(Debug, Default)]
struct EventLane {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slab: Vec<Ev>,
    free: Vec<u32>,
}

impl EventLane {
    fn with_capacity(cap: usize) -> EventLane {
        EventLane {
            heap: BinaryHeap::with_capacity(cap),
            slab: Vec::with_capacity(cap),
            free: Vec::with_capacity(cap),
        }
    }

    /// `(time, seq)` of this lane's earliest event.
    fn head(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|&Reverse((t, s, _))| (t, s))
    }

    fn insert(&mut self, at: SimTime, seq: u64, ev: Ev) {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = ev;
                slot
            }
            None => {
                // Checked: a wrapped slot index would silently alias another
                // event's payload and corrupt the heap.
                let slot = u32::try_from(self.slab.len()).expect("event slab exceeds u32 slots");
                self.slab.push(ev);
                slot
            }
        };
        // The slot index never breaks a tie: `seq` is globally unique.
        self.heap.push(Reverse((at, seq, slot)));
    }

    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        let Reverse((t, _seq, slot)) = self.heap.pop()?;
        let ev = self.slab[slot as usize];
        self.free.push(slot);
        Some((t, ev))
    }

    /// Closed-window surgery: remove every event below `horizon` (the
    /// window's pending resumes, all consumed by the plan) and splice in the
    /// chain-end resumes with their pre-assigned sequence numbers. The pop
    /// count is cross-checked against the plan — a mismatch means the purity
    /// classification was wrong, which would silently corrupt event order.
    fn splice_window(&mut self, horizon: SimTime, pops: usize, pushes: &[(SimTime, u64, NodeId)]) {
        let mut popped = 0usize;
        while let Some(&Reverse((t, _, slot))) = self.heap.peek() {
            if t >= horizon {
                break;
            }
            self.heap.pop();
            self.free.push(slot);
            popped += 1;
        }
        assert_eq!(popped, pops, "window plan pop count mismatch");
        for &(t, seq, node) in pushes {
            self.insert(t, seq, Ev::Resume(node, Resume::Computed));
        }
    }
}

/// How a pre-stepped transition chain ends (built by `crate::pdes`, consumed
/// by [`Engine::plan_closed_window`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChainEnd {
    /// The final `Compute` pushes the node's next resume at or past the
    /// window horizon — the chain leaves one physical event for next window.
    BeyondHorizon,
    /// The program finished; the chain leaves nothing behind.
    Done,
    /// The chain hit a step with shard-external reach (I/O, message,
    /// collective) — the window must be committed serially.
    Boundary,
}

/// One node's pre-stepped compute chain for the current window: the pending
/// resume it starts from (scheduled time and heap sequence number) and the
/// durations of the `Compute` transitions walked below the horizon, in
/// order.
#[derive(Debug)]
pub(crate) struct NodeChain {
    pub node: NodeId,
    pub t0: SimTime,
    pub seq0: u64,
    pub computes: Vec<SimDuration>,
    pub end: ChainEnd,
}

/// The fully determined effect of a closed window, produced by
/// [`Engine::plan_closed_window`] without touching engine state: per-lane
/// pop counts and splices (with pre-assigned sequence numbers replicating
/// the serial engine's push order exactly), finished nodes, and the
/// counter/clock updates.
#[derive(Debug)]
pub(crate) struct WindowPlan {
    horizon: SimTime,
    /// Pending events to remove per lane (cross-checked by the surgery).
    pops: Vec<usize>,
    /// Chain-end resumes to splice per lane: `(time, seq, node)`.
    pushes: Vec<Vec<(SimTime, u64, NodeId)>>,
    /// Nodes whose programs finished inside the window.
    done: Vec<NodeId>,
    /// Events the serial engine would have processed for this window.
    events: u64,
    /// Sequence counter after the window.
    next_seq: u64,
    /// Time of the window's last event (the new `now` and wall).
    last: SimTime,
}

/// The discrete-event engine.
///
/// All hot-path state is dense and index-addressed: event payloads live in a
/// slab whose slot index rides along in the heap entry, eager messages in
/// per-receiver channel tables, barrier/broadcast state in vectors indexed by
/// group id, and I/O token state in a sliding window keyed by the token's
/// offset from the oldest live token. The only ordering authority is the
/// `(time, seq)` pair in the heap, so none of this affects event order.
pub struct Engine<S: IoService> {
    now: SimTime,
    seq: u64,
    /// Event lanes: one (serial) or one per mesh region plus a trailing
    /// boundary lane (sharded; see [`Engine::configure_lanes`]).
    lanes: Vec<EventLane>,
    /// Owning lane per node for resume routing (all zeros when serial).
    lane_of: Vec<u32>,
    /// Total events queued across all lanes.
    queued: usize,
    programs: Vec<Box<dyn NodeProgram>>,
    done: Vec<bool>,
    service: S,
    mesh: Mesh,
    comm: CommCosts,
    groups: Vec<Vec<NodeId>>,
    /// Barrier/broadcast rendezvous state, indexed by `GroupId`.
    barriers: Vec<BarrierState>,
    broadcasts: Vec<BroadcastState>,
    /// Eager-message channels, indexed by receiving node.
    channels: Vec<Vec<Channel>>,
    /// Per-receiver `(from, tag)` → channel-slot index.
    chan_slots: Vec<ChanIndex>,
    /// Live token states in a sliding window: `tokens[t - token_base]` is the
    /// state of token `t`. Tokens are issued sequentially and retired roughly
    /// in order, so the window stays small.
    tokens: VecDeque<Option<TokenState>>,
    token_base: IoToken,
    next_token: IoToken,
    events_processed: u64,
    heap_peak: usize,
    channel_buffered: u64,
    channel_peak: u64,
    /// Liveness-watchdog deadline: a run whose simulated time crosses this
    /// with programs unfinished is declared stuck (see [`HangReport`]).
    watchdog: Option<SimTime>,
    /// Time of the last processed *effectful* event (no-effect service
    /// timers excluded); becomes `EngineReport::wall`.
    run_wall: SimTime,
    /// Hang diagnosis recorded mid-run by the watchdog, if any.
    hang: Option<HangReport>,
}

impl<S: IoService> Engine<S> {
    /// Build an engine over `programs` (node `i` runs `programs[i]`) with the
    /// given mesh/interconnect parameters and file-system service. Group 0 is
    /// pre-registered as "all nodes".
    pub fn new(
        mesh: Mesh,
        comm: CommCosts,
        programs: Vec<Box<dyn NodeProgram>>,
        service: S,
    ) -> Engine<S> {
        assert!(
            programs.len() as u32 <= mesh.compute_nodes,
            "more programs than compute nodes"
        );
        let n = programs.len();
        let all: Vec<NodeId> = (0..n as NodeId).collect();
        let done = vec![false; n];
        // In steady state each node has at most a few events in flight
        // (resume + an async completion or message); pre-size the heap and
        // slab so neither reallocates mid-run.
        let cap = 4 * n + 16;
        let mut channels = Vec::with_capacity(n);
        channels.resize_with(n, Vec::new);
        let mut chan_slots = Vec::with_capacity(n);
        chan_slots.resize_with(n, ChanIndex::default);
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            lanes: vec![EventLane::with_capacity(cap)],
            lane_of: vec![0; n],
            queued: 0,
            programs,
            done,
            service,
            mesh,
            comm,
            groups: vec![all],
            barriers: vec![BarrierState::default()],
            broadcasts: vec![BroadcastState::default()],
            channels,
            chan_slots,
            tokens: VecDeque::new(),
            token_base: 1,
            next_token: 1,
            events_processed: 0,
            heap_peak: 0,
            channel_buffered: 0,
            channel_peak: 0,
            watchdog: None,
            run_wall: SimTime::ZERO,
            hang: None,
        }
    }

    /// Arm the liveness watchdog at [`DEFAULT_WATCHDOG`] — the idiom for
    /// tests and sweeps that drive the engine directly rather than through
    /// a harness that picks its own deadline.
    pub fn set_default_watchdog(&mut self) {
        self.set_watchdog(DEFAULT_WATCHDOG);
    }

    /// Arm the liveness watchdog: if simulated time crosses `deadline` while
    /// any program is unfinished, or the event heap drains with programs
    /// unfinished, the run stops and the report carries a typed
    /// [`HangReport`] instead of spinning until the event budget blows.
    /// (A zero-time livelock — events that never advance the clock — is
    /// still caught by the hard `MAX_EVENTS` backstop.)
    pub fn set_watchdog(&mut self, deadline: SimTime) {
        self.watchdog = Some(deadline);
    }

    /// Register a node group for barriers/broadcasts; returns its id.
    pub fn add_group(&mut self, nodes: Vec<NodeId>) -> GroupId {
        assert!(!nodes.is_empty(), "empty group");
        self.groups.push(nodes);
        self.barriers.push(BarrierState::default());
        self.broadcasts.push(BroadcastState::default());
        (self.groups.len() - 1) as GroupId
    }

    /// Hot-path counters for this run so far.
    pub fn perf(&self) -> EnginePerf {
        EnginePerf {
            events: self.events_processed,
            heap_peak: self.heap_peak as u64,
            channel_peak: self.channel_peak,
        }
    }

    /// Access the service (e.g. to extract its tracer after the run).
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Mutable access to the service (fault injection mid-run is done by
    /// wrapping programs; this is for post-run extraction).
    pub fn service_mut(&mut self) -> &mut S {
        &mut self.service
    }

    /// Consume the engine, returning the service.
    pub fn into_service(self) -> S {
        self.service
    }

    /// Reconfigure the event queue into one lane per region plus a trailing
    /// boundary lane for non-resume traffic. Must run before any event is
    /// queued; the sharded front end (`crate::pdes`) calls it between
    /// construction and `begin_run`. Lane layout never affects event order
    /// (the pop is a global `(time, seq)` minimum across lane heads), so a
    /// reconfigured engine is byte-identical to a serial one.
    pub(crate) fn configure_lanes(&mut self, regions: &[Range<NodeId>]) {
        assert_eq!(self.queued, 0, "lanes reconfigured with events queued");
        let cap = 4 * self.programs.len() / regions.len().max(1) + 16;
        self.lanes = (0..=regions.len())
            .map(|_| EventLane::with_capacity(cap))
            .collect();
        for (i, r) in regions.iter().enumerate() {
            let lane = u32::try_from(i).expect("region count exceeds u32");
            for n in r.clone() {
                self.lane_of[n as usize] = lane;
            }
        }
    }

    /// Index of the lane holding the globally next event: the minimum
    /// `(time, seq)` across lane heads. At most regions + 1 lanes exist, so
    /// the scan is a handful of comparisons.
    fn min_lane(&self) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            if let Some((t, s)) = lane.head() {
                if best.is_none_or(|(bt, bs, _)| (t, s) < (bt, bs)) {
                    best = Some((t, s, i));
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    fn push(&mut self, at: SimTime, ev: Ev) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let seq = self.seq;
        self.seq += 1;
        self.push_with_seq(at, seq, ev);
    }

    /// Insert an event with an explicit sequence number. The closed-window
    /// splice replays the serial engine's seq assignment from the window
    /// plan; everything else allocates through [`Engine::push`].
    fn push_with_seq(&mut self, at: SimTime, seq: u64, ev: Ev) {
        let lane = match ev {
            // Node-resume traffic lives in the owning region's lane.
            Ev::Resume(node, _) => self.lane_of[node as usize] as usize,
            // Everything with cross-region reach (I/O completions, service
            // timers) lives in the boundary lane — the last lane, which is
            // also lane 0 when the engine runs unsharded.
            Ev::IoComplete(..) | Ev::ServiceTimer(_) => self.lanes.len() - 1,
        };
        self.lanes[lane].insert(at, seq, ev);
        self.queued += 1;
        self.heap_peak = self.heap_peak.max(self.queued);
    }

    /// Find (or create) the channel carrying messages `from -> to` under
    /// `tag`; returns its index in `to`'s channel table.
    fn channel_index(&mut self, to: NodeId, from: NodeId, tag: u32) -> usize {
        let table = &mut self.channels[to as usize];
        let slot = self.chan_slots[to as usize]
            .entry((from as u64) << 32 | tag as u64)
            .or_insert_with(|| {
                table.push(Channel::default());
                u32::try_from(table.len() - 1).expect("channel table exceeds u32 slots")
            });
        *slot as usize
    }

    fn token_index(&self, token: IoToken) -> Option<usize> {
        if token < self.token_base {
            return None;
        }
        let i = (token - self.token_base) as usize;
        (i < self.tokens.len()).then_some(i)
    }

    fn token_insert(&mut self, state: TokenState) -> IoToken {
        let token = self.next_token;
        self.next_token += 1;
        self.tokens.push_back(Some(state));
        token
    }

    /// Drop retired tokens off the front so the window tracks the live range.
    fn compact_tokens(&mut self) {
        while matches!(self.tokens.front(), Some(None)) {
            self.tokens.pop_front();
            self.token_base += 1;
        }
    }

    /// Drain buffered scheduling into the heap; returns whether anything
    /// was scheduled (a no-effect timer should not extend the reported
    /// wall time).
    fn drain_sched(&mut self, sched: Sched) -> bool {
        let any = !sched.completions.is_empty() || !sched.timers.is_empty();
        for (token, at, result) in sched.completions {
            self.push(at.max(self.now), Ev::IoComplete(token, result));
        }
        for (at, timer) in sched.timers {
            self.push(at.max(self.now), Ev::ServiceTimer(timer));
        }
        any
    }

    /// Run to completion (event queue drained). Returns run statistics.
    pub fn run(&mut self) -> EngineReport {
        self.run_until(SimTime(u64::MAX))
    }

    /// Run until the event queue drains or simulated time would pass
    /// `stop`: events at `t <= stop` are processed, everything later is
    /// abandoned in the queue. This models a hard application crash at
    /// `stop` — in-flight work simply never completes, and the report's
    /// `blocked` list names the nodes that died mid-program. A `stop` of
    /// `SimTime(u64::MAX)` is an ordinary full run.
    pub fn run_until(&mut self, stop: SimTime) -> EngineReport {
        self.begin_run();
        let _ = self.pump(None, stop);
        self.finish_run()
    }

    /// Start a run: let the service arm standing timers, then seed every
    /// node's `Resume::Start` event at time zero. Split out of
    /// [`Engine::run_until`] so the sharded window driver
    /// ([`crate::pdes::ShardedEngine`]) can interleave parallel pre-stepping
    /// between bounded [`Engine::pump`] calls.
    pub(crate) fn begin_run(&mut self) {
        let mut sched = Sched::default();
        self.service.on_start(&mut sched);
        self.drain_sched(sched);
        for node in 0..self.programs.len() as NodeId {
            self.push(SimTime::ZERO, Ev::Resume(node, Resume::Start));
        }
    }

    /// Process events with `t <= stop` and, when `horizon` is `Some(h)`,
    /// `t < h`. Returns `true` when the run is over — heap drained, next
    /// event past the crash cut `stop`, or the watchdog tripped — and
    /// `false` when the horizon was reached with work remaining.
    pub(crate) fn pump(&mut self, horizon: Option<SimTime>, stop: SimTime) -> bool {
        while let Some(lane) = self.min_lane() {
            let (t, _) = self.lanes[lane].head().expect("min lane lost its head");
            if t > stop {
                return true;
            }
            if let Some(h) = horizon {
                if t >= h {
                    return false;
                }
            }
            if let Some(deadline) = self.watchdog {
                if t > deadline && !self.done.iter().all(|d| *d) {
                    self.hang =
                        Some(self.hang_report(t, HangReason::DeadlineExceeded { deadline }));
                    return true;
                }
            }
            let (t, ev) = self.lanes[lane].pop().expect("peeked event vanished");
            self.queued -= 1;
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events_processed += 1;
            assert!(
                self.events_processed < MAX_EVENTS,
                "event budget exceeded: runaway program?"
            );
            match ev {
                Ev::Resume(node, resume) => {
                    self.step_node(node, resume);
                    self.run_wall = self.now;
                }
                Ev::IoComplete(token, result) => {
                    self.io_complete(token, result);
                    self.run_wall = self.now;
                }
                Ev::ServiceTimer(timer) => {
                    // Wall time excludes trailing no-effect service timers
                    // (e.g. a periodic flush firing long after the programs
                    // finished with nothing left to flush).
                    let mut sched = Sched::default();
                    self.service.on_timer(self.now, timer, &mut sched);
                    if self.drain_sched(sched) {
                        self.run_wall = self.now;
                    }
                }
            }
        }
        true
    }

    /// Close out a run: notify the service, collect blocked nodes, apply the
    /// quiescence check, and assemble the report.
    pub(crate) fn finish_run(&mut self) -> EngineReport {
        self.service.on_run_end(self.now);
        let blocked: Vec<NodeId> = (0..self.programs.len() as NodeId)
            .filter(|&n| !self.done[n as usize])
            .collect();
        // Quiescence check: the heap drained (nothing was abandoned past a
        // crash cut or a tripped deadline) yet programs never finished —
        // that is "stuck", not "finished".
        let mut hang = self.hang.take();
        if hang.is_none() && self.watchdog.is_some() && self.queued == 0 && !blocked.is_empty() {
            hang = Some(self.hang_report(self.now, HangReason::Exhausted));
        }
        EngineReport {
            wall: self.run_wall,
            events: self.events_processed,
            nodes_done: self.done.iter().filter(|d| **d).count() as u32,
            blocked,
            hang,
        }
    }

    /// Timestamp of the earliest queued event, if any.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        self.lanes
            .iter()
            .filter_map(EventLane::head)
            .min()
            .map(|(t, _)| t)
    }

    /// The armed liveness-watchdog deadline, if any (closed-window guard).
    pub(crate) fn watchdog_deadline(&self) -> Option<SimTime> {
        self.watchdog
    }

    /// Collect every pending node-resume event strictly below `horizon`,
    /// with its scheduled time and heap sequence number. Each node has at
    /// most one resume in flight (a node is stepped only when it unblocks,
    /// and each step parks it again), so the result holds at most one entry
    /// per node; heap order does not matter here because a pending resume's
    /// payload and its node's program state are sealed until the event is
    /// popped.
    ///
    /// Returns whether the window is *pure*: no non-resume event (I/O
    /// completion, service timer) is queued below the horizon. Purity is
    /// one precondition for the closed-window batch commit — a non-resume
    /// event interleaved with the chains would need the serial dispatcher.
    pub(crate) fn pending_resumes_below(
        &self,
        horizon: SimTime,
        out: &mut Vec<(SimTime, u64, NodeId, Resume)>,
    ) -> bool {
        let mut pure = true;
        for lane in &self.lanes {
            for &Reverse((t, seq, slot)) in lane.heap.iter() {
                if t < horizon {
                    match lane.slab[slot as usize] {
                        Ev::Resume(node, resume) => out.push((t, seq, node, resume)),
                        Ev::IoComplete(..) | Ev::ServiceTimer(_) => pure = false,
                    }
                }
            }
        }
        pure
    }

    /// Turn a window's pre-stepped chains into a [`WindowPlan`] without
    /// touching engine state: a tiny merge-simulation pops the chains in
    /// `(time, seq)` order — exactly the order the serial dispatcher would —
    /// assigning each chain-advancing push the sequence number the serial
    /// engine would have assigned. Resumes created *and* consumed inside the
    /// window never materialize (they would be pushed and popped without any
    /// other observer); only the chain-end pushes at or past the horizon
    /// become physical events, carrying their pre-assigned seqs so every
    /// later tie-break is byte-identical to the serial run.
    ///
    /// Caller guarantees (checked in debug builds): the window is pure, and
    /// no chain ends at a [`ChainEnd::Boundary`].
    pub(crate) fn plan_closed_window(&self, chains: &[NodeChain], horizon: SimTime) -> WindowPlan {
        let lanes = self.lanes.len();
        let mut pops = vec![0usize; lanes];
        let mut pushes: Vec<Vec<(SimTime, u64, NodeId)>> = vec![Vec::new(); lanes];
        let mut done = Vec::new();
        let mut sim = BinaryHeap::with_capacity(chains.len());
        for (ci, c) in chains.iter().enumerate() {
            debug_assert!(
                c.end != ChainEnd::Boundary,
                "boundary chain in closed window"
            );
            debug_assert!(c.t0 < horizon, "chain starts past the horizon");
            pops[self.lane_of[c.node as usize] as usize] += 1;
            sim.push(Reverse((c.t0, c.seq0, ci)));
        }
        let mut pos = vec![0usize; chains.len()];
        let mut next_seq = self.seq;
        let mut events = 0u64;
        let mut last = self.now;
        while let Some(Reverse((t, _seq, ci))) = sim.pop() {
            events += 1;
            last = t;
            let c = &chains[ci];
            let p = pos[ci];
            if p < c.computes.len() {
                let t2 = t + c.computes[p];
                let s2 = next_seq;
                next_seq += 1;
                pos[ci] = p + 1;
                if t2 < horizon {
                    sim.push(Reverse((t2, s2, ci)));
                } else {
                    debug_assert!(
                        p + 1 == c.computes.len() && c.end == ChainEnd::BeyondHorizon,
                        "chain crossed the horizon mid-walk"
                    );
                    pushes[self.lane_of[c.node as usize] as usize].push((t2, s2, c.node));
                }
            } else {
                debug_assert!(c.end == ChainEnd::Done, "chain ran dry without finishing");
                done.push(c.node);
            }
        }
        WindowPlan {
            horizon,
            pops,
            pushes,
            done,
            events,
            next_seq,
            last,
        }
    }

    /// Apply a closed window in one batch: per-lane heap surgery (remove the
    /// consumed pending resumes, splice the chain-end pushes), then the
    /// counter and clock updates the serial dispatcher would have made.
    /// Lanes are disjoint, so the surgery fans out across `threads` workers
    /// when the batch is large enough to pay for the spawn.
    ///
    /// No peak update is needed: within a window every push is preceded by a
    /// pop (each event spawns at most one successor), so the queue never
    /// grows past its window-start size — which the push that created the
    /// last pre-window event already recorded.
    pub(crate) fn apply_closed_window(&mut self, plan: &WindowPlan, threads: usize) {
        let popped: usize = plan.pops.iter().sum();
        let pushed: usize = plan.pushes.iter().map(Vec::len).sum();
        let horizon = plan.horizon;
        if threads > 1 && popped + pushed >= PAR_SURGERY_MIN {
            std::thread::scope(|scope| {
                for ((lane, &pops), pushes) in
                    self.lanes.iter_mut().zip(&plan.pops).zip(&plan.pushes)
                {
                    if pops > 0 || !pushes.is_empty() {
                        scope.spawn(move || lane.splice_window(horizon, pops, pushes));
                    }
                }
            });
        } else {
            for ((lane, &pops), pushes) in self.lanes.iter_mut().zip(&plan.pops).zip(&plan.pushes) {
                if pops > 0 || !pushes.is_empty() {
                    lane.splice_window(horizon, pops, pushes);
                }
            }
        }
        self.queued = self.queued + pushed - popped;
        for &node in &plan.done {
            self.done[node as usize] = true;
        }
        self.events_processed += plan.events;
        assert!(
            self.events_processed < MAX_EVENTS,
            "event budget exceeded: runaway program?"
        );
        self.seq = plan.next_seq;
        self.now = plan.last;
        self.run_wall = plan.last;
    }

    /// Snapshot the stuck state: parked nodes, in-flight I/O tokens, and the
    /// service timers that will never fire.
    fn hang_report(&self, at: SimTime, reason: HangReason) -> HangReport {
        let parked_nodes: Vec<NodeId> = (0..self.programs.len() as NodeId)
            .filter(|&n| !self.done[n as usize])
            .collect();
        let pending_requests: Vec<IoToken> = self
            .tokens
            .iter()
            .enumerate()
            .filter_map(|(i, st)| match st {
                Some(
                    TokenState::Sync(..)
                    | TokenState::AsyncPending(..)
                    | TokenState::AsyncWaited(..),
                ) => Some(self.token_base + i as IoToken),
                _ => None,
            })
            .collect();
        // Scan every lane: abandoned timers live in the boundary lane, but
        // parked shards' resume lanes must not hide them if the layout ever
        // changes, so count across the whole queue.
        let killed_timers = self
            .lanes
            .iter()
            .flat_map(|lane| {
                lane.heap.iter().filter(|Reverse((_, _, slot))| {
                    matches!(lane.slab[*slot as usize], Ev::ServiceTimer(_))
                })
            })
            .count() as u64;
        HangReport {
            at,
            reason,
            parked_nodes,
            pending_requests,
            killed_timers,
        }
    }

    fn step_node(&mut self, node: NodeId, resume: Resume) {
        if self.done[node as usize] {
            return;
        }
        let step = self.programs[node as usize].step(node, resume);
        match step {
            Step::Compute(d) => {
                let at = self.now + d;
                self.push(at, Ev::Resume(node, Resume::Computed));
            }
            Step::Io(req) => {
                let token = self.token_insert(TokenState::Sync(node, req.file));
                let mut sched = Sched::default();
                self.service
                    .submit(node, self.now, req, token, false, &mut sched);
                let _ = self.drain_sched(sched);
            }
            Step::IoAsync(req) => {
                let token = self.token_insert(TokenState::AsyncPending(node, req.file));
                let issue = self.service.issue_cost(node, &req);
                let mut sched = Sched::default();
                self.service
                    .submit(node, self.now, req, token, true, &mut sched);
                let _ = self.drain_sched(sched);
                let at = self.now + issue;
                self.push(at, Ev::Resume(node, Resume::IoIssued(token)));
            }
            Step::IoWait(token) => {
                let i = self
                    .token_index(token)
                    .unwrap_or_else(|| panic!("IoWait on unknown token {token}"));
                match self.tokens[i] {
                    Some(TokenState::AsyncDone(result, file)) => {
                        self.tokens[i] = None;
                        self.compact_tokens();
                        self.service.on_iowait(node, file, self.now, self.now);
                        let at = self.now;
                        self.push(at, Ev::Resume(node, Resume::IoWaited(result)));
                    }
                    Some(TokenState::AsyncPending(owner, file)) => {
                        debug_assert_eq!(owner, node, "waiting on another node's token");
                        self.tokens[i] = Some(TokenState::AsyncWaited(node, file, self.now));
                    }
                    Some(other) => panic!("IoWait on non-async token {token}: {other:?}"),
                    None => panic!("IoWait on unknown token {token}"),
                }
            }
            Step::Barrier(group) => {
                let size = self.group(group).len();
                debug_assert!(
                    self.group(group).contains(&node),
                    "node {node} not in group {group}"
                );
                let state = &mut self.barriers[group as usize];
                state.arrived.push(node);
                if state.arrived.len() == size {
                    let members = std::mem::take(&mut state.arrived);
                    let size = u32::try_from(size).expect("group size exceeds u32");
                    let release = self.now + self.mesh.barrier_time(&self.comm, size);
                    for member in members {
                        self.push(release, Ev::Resume(member, Resume::BarrierDone));
                    }
                }
            }
            Step::Send { to, bytes, tag } => {
                let hops = self.mesh.compute_hops(node, to);
                let arrival = self.now + self.mesh.msg_time(&self.comm, hops, bytes);
                let i = self.channel_index(to, node, tag);
                let ch = &mut self.channels[to as usize][i];
                if ch.waiting {
                    ch.waiting = false;
                    self.push(arrival, Ev::Resume(to, Resume::Received(bytes)));
                } else {
                    ch.queue.push_back((arrival, bytes));
                    self.channel_buffered += 1;
                    self.channel_peak = self.channel_peak.max(self.channel_buffered);
                }
                let resumed = self.now + self.comm.sw_overhead;
                self.push(resumed, Ev::Resume(node, Resume::Sent));
            }
            Step::Recv { from, tag } => {
                let i = self.channel_index(node, from, tag);
                let ch = &mut self.channels[node as usize][i];
                if let Some((arrival, bytes)) = ch.queue.pop_front() {
                    self.channel_buffered -= 1;
                    let at = arrival.max(self.now);
                    self.push(at, Ev::Resume(node, Resume::Received(bytes)));
                } else {
                    debug_assert!(!ch.waiting, "double recv on ({from}, {node}, {tag})");
                    ch.waiting = true;
                }
            }
            Step::Broadcast { root, bytes, group } => {
                let size = self.group(group).len();
                debug_assert!(
                    self.group(group).contains(&node),
                    "node {node} not in group {group}"
                );
                let state = &mut self.broadcasts[group as usize];
                state.arrived.push(node);
                if node == root {
                    state.bytes = bytes;
                }
                if state.arrived.len() == size {
                    let members = std::mem::take(&mut state.arrived);
                    let payload = state.bytes;
                    state.bytes = 0;
                    let size = u32::try_from(size).expect("group size exceeds u32");
                    let done = self.now + self.mesh.broadcast_time(&self.comm, size, payload);
                    for member in members {
                        self.push(done, Ev::Resume(member, Resume::BroadcastDone));
                    }
                }
            }
            Step::Done => {
                self.done[node as usize] = true;
            }
        }
    }

    fn io_complete(&mut self, token: IoToken, result: IoResult) {
        let state = self.token_index(token).and_then(|i| self.tokens[i].take());
        match state {
            Some(TokenState::Sync(node, _file)) => {
                self.compact_tokens();
                let at = self.now;
                self.push(at, Ev::Resume(node, Resume::IoDone(result)));
            }
            Some(TokenState::AsyncPending(_node, file)) => {
                // Completed before anyone waited: park the result in place.
                let i = self.token_index(token).expect("token window moved");
                self.tokens[i] = Some(TokenState::AsyncDone(result, file));
            }
            Some(TokenState::AsyncWaited(node, file, wait_start)) => {
                self.compact_tokens();
                self.service.on_iowait(node, file, wait_start, self.now);
                let at = self.now;
                self.push(at, Ev::Resume(node, Resume::IoWaited(result)));
            }
            Some(TokenState::AsyncDone(..)) | None => {
                panic!("duplicate or unknown completion for token {token}")
            }
        }
    }

    fn group(&self, id: GroupId) -> &[NodeId] {
        &self.groups[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{IoVerb, ScriptOp, ScriptProgram};

    /// A trivial service: every operation takes a fixed 1 ms.
    struct FixedService {
        latency: SimDuration,
        submitted: Vec<(NodeId, IoVerb)>,
        iowaits: Vec<(NodeId, SimDuration)>,
    }

    impl FixedService {
        fn new() -> FixedService {
            FixedService {
                latency: SimDuration::from_millis(1),
                submitted: Vec::new(),
                iowaits: Vec::new(),
            }
        }
    }

    impl IoService for FixedService {
        fn submit(
            &mut self,
            node: NodeId,
            now: SimTime,
            req: IoRequest,
            token: IoToken,
            _is_async: bool,
            sched: &mut Sched,
        ) {
            self.submitted.push((node, req.verb));
            sched.complete_io(
                token,
                now + self.latency,
                IoResult {
                    bytes: req.bytes,
                    queued: SimDuration::ZERO,
                    service: self.latency,
                    fault: None,
                },
            );
        }

        fn on_timer(&mut self, _now: SimTime, _timer: u64, _sched: &mut Sched) {}

        fn issue_cost(&self, _node: NodeId, _req: &IoRequest) -> SimDuration {
            SimDuration::from_micros(10)
        }

        fn on_iowait(&mut self, node: NodeId, _file: u32, s: SimTime, e: SimTime) {
            self.iowaits.push((node, e.since(s)));
        }
    }

    fn engine_for(progs: Vec<Vec<ScriptOp>>) -> Engine<FixedService> {
        let n = progs.len() as u32;
        let mesh = Mesh::for_nodes(n.max(2), 1);
        let programs: Vec<Box<dyn NodeProgram>> = progs
            .into_iter()
            .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram>)
            .collect();
        Engine::new(mesh, CommCosts::default(), programs, FixedService::new())
    }

    #[test]
    fn compute_advances_time() {
        let mut e = engine_for(vec![vec![ScriptOp::Compute(SimDuration::from_secs(3))]]);
        let report = e.run();
        assert!(report.clean());
        assert_eq!(report.wall, SimTime(3_000_000_000));
        assert_eq!(report.nodes_done, 1);
    }

    #[test]
    fn sync_io_blocks_for_service_latency() {
        let mut e = engine_for(vec![vec![
            ScriptOp::Io(IoRequest::read(1, 100)),
            ScriptOp::Io(IoRequest::write(1, 100)),
        ]]);
        let report = e.run();
        assert!(report.clean());
        assert_eq!(report.wall, SimTime(2_000_000));
        assert_eq!(
            e.service().submitted,
            vec![(0, IoVerb::Read), (0, IoVerb::Write)]
        );
    }

    #[test]
    fn async_io_overlaps_with_compute() {
        // Async read (1 ms) issued, then 5 ms of compute, then wait: total
        // should be ~5 ms (+ issue cost), not 6 ms.
        let mut e = engine_for(vec![vec![
            ScriptOp::IoAsync(IoRequest::read(1, 100)),
            ScriptOp::Compute(SimDuration::from_millis(5)),
            ScriptOp::WaitOldest,
        ]]);
        let report = e.run();
        assert!(report.clean());
        assert!(report.wall < SimTime(5_200_000), "wall {}", report.wall);
        // The wait found the result ready: zero recorded iowait.
        assert_eq!(e.service().iowaits.len(), 1);
        assert_eq!(e.service().iowaits[0].1, SimDuration::ZERO);
    }

    #[test]
    fn async_io_wait_blocks_when_not_ready() {
        let mut e = engine_for(vec![vec![
            ScriptOp::IoAsync(IoRequest::read(1, 100)),
            ScriptOp::WaitOldest,
        ]]);
        let report = e.run();
        assert!(report.clean());
        // Wait started at issue-cost (10 us), completion at 1 ms.
        let wait = e.service().iowaits[0].1;
        assert_eq!(wait, SimDuration(990_000));
    }

    #[test]
    fn barrier_synchronizes_nodes() {
        // Node 0 computes 1 ms, node 1 computes 10 ms; both then barrier and
        // finish together.
        let mut e = engine_for(vec![
            vec![
                ScriptOp::Compute(SimDuration::from_millis(1)),
                ScriptOp::Barrier(0),
            ],
            vec![
                ScriptOp::Compute(SimDuration::from_millis(10)),
                ScriptOp::Barrier(0),
            ],
        ]);
        let report = e.run();
        assert!(report.clean());
        assert!(report.wall >= SimTime(10_000_000));
    }

    #[test]
    fn send_recv_rendezvous_both_orders() {
        // Order 1: send first.
        let mut e = engine_for(vec![
            vec![ScriptOp::Send {
                to: 1,
                bytes: 1000,
                tag: 5,
            }],
            vec![ScriptOp::Recv { from: 0, tag: 5 }],
        ]);
        assert!(e.run().clean());
        // Order 2: receiver blocks first (receiver is delayed less than the
        // sender's compute).
        let mut e = engine_for(vec![
            vec![
                ScriptOp::Compute(SimDuration::from_millis(5)),
                ScriptOp::Send {
                    to: 1,
                    bytes: 1000,
                    tag: 5,
                },
            ],
            vec![ScriptOp::Recv { from: 0, tag: 5 }],
        ]);
        let report = e.run();
        assert!(report.clean());
        assert!(report.wall >= SimTime(5_000_000));
    }

    #[test]
    fn tags_keep_messages_apart() {
        let mut e = engine_for(vec![
            vec![
                ScriptOp::Send {
                    to: 1,
                    bytes: 10,
                    tag: 1,
                },
                ScriptOp::Send {
                    to: 1,
                    bytes: 20,
                    tag: 2,
                },
            ],
            vec![
                // Receive tag 2 first, then tag 1.
                ScriptOp::Recv { from: 0, tag: 2 },
                ScriptOp::Recv { from: 0, tag: 1 },
            ],
        ]);
        assert!(e.run().clean());
    }

    #[test]
    fn broadcast_releases_whole_group() {
        let mut e = engine_for(vec![
            vec![ScriptOp::Broadcast {
                root: 0,
                bytes: 1 << 20,
                group: 0,
            }],
            vec![
                ScriptOp::Compute(SimDuration::from_millis(3)),
                ScriptOp::Broadcast {
                    root: 0,
                    bytes: 1 << 20,
                    group: 0,
                },
            ],
        ]);
        let report = e.run();
        assert!(report.clean());
        // Broadcast cannot complete before the latest arrival.
        assert!(report.wall >= SimTime(3_000_000));
    }

    #[test]
    fn subgroup_barrier_excludes_outsiders() {
        let mesh = Mesh::for_nodes(3, 1);
        let programs: Vec<Box<dyn NodeProgram>> = vec![
            // Node 0 never joins the group barrier.
            Box::new(ScriptProgram::new(vec![ScriptOp::Compute(
                SimDuration::from_millis(1),
            )])),
            Box::new(ScriptProgram::new(vec![ScriptOp::Barrier(1)])),
            Box::new(ScriptProgram::new(vec![ScriptOp::Barrier(1)])),
        ];
        let mut e = Engine::new(mesh, CommCosts::default(), programs, FixedService::new());
        let g = e.add_group(vec![1, 2]);
        assert_eq!(g, 1);
        let report = e.run();
        assert!(report.clean());
    }

    #[test]
    fn missing_partner_reports_blocked() {
        let mut e = engine_for(vec![vec![ScriptOp::Recv { from: 1, tag: 0 }], vec![]]);
        let report = e.run();
        assert!(!report.clean());
        assert_eq!(report.blocked, vec![0]);
        assert_eq!(report.nodes_done, 1);
    }

    #[test]
    fn repeated_barriers_reuse_group_state() {
        // Ten consecutive barriers on the same group must all release.
        let progs = (0..3)
            .map(|_| {
                let mut ops = Vec::new();
                for _ in 0..10 {
                    ops.push(ScriptOp::Compute(SimDuration(100)));
                    ops.push(ScriptOp::Barrier(0));
                }
                ops
            })
            .collect();
        let mut e = engine_for(progs);
        let report = e.run();
        assert!(report.clean());
    }

    #[test]
    fn repeated_broadcasts_reuse_group_state() {
        let progs = (0..3)
            .map(|_| {
                (0..5)
                    .map(|_| ScriptOp::Broadcast {
                        root: 1,
                        bytes: 4096,
                        group: 0,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut e = engine_for(progs);
        assert!(e.run().clean());
    }

    #[test]
    #[should_panic(expected = "unknown token")]
    fn iowait_on_unknown_token_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            fn step(&mut self, _: NodeId, _: crate::program::Resume) -> crate::program::Step {
                crate::program::Step::IoWait(999)
            }
        }
        let mesh = Mesh::for_nodes(2, 1);
        let mut e = Engine::new(
            mesh,
            CommCosts::default(),
            vec![Box::new(Bad)],
            FixedService::new(),
        );
        let _ = e.run();
    }

    #[test]
    fn unwaited_async_completes_without_resume() {
        // A program that issues async I/O and finishes without waiting must
        // not deadlock or panic; the completion is simply parked.
        let mut e = engine_for(vec![vec![
            ScriptOp::IoAsync(IoRequest::read(1, 64)),
            ScriptOp::Compute(SimDuration::from_millis(5)),
        ]]);
        let report = e.run();
        assert!(report.clean());
    }

    #[test]
    fn deterministic_event_order() {
        let build = || {
            engine_for(vec![
                vec![
                    ScriptOp::Io(IoRequest::read(1, 10)),
                    ScriptOp::Barrier(0),
                    ScriptOp::Io(IoRequest::write(1, 10)),
                ],
                vec![
                    ScriptOp::Io(IoRequest::read(2, 10)),
                    ScriptOp::Barrier(0),
                    ScriptOp::Io(IoRequest::write(2, 10)),
                ],
            ])
        };
        let mut a = build();
        let mut b = build();
        let ra = a.run();
        let rb = b.run();
        assert_eq!(ra, rb);
        assert_eq!(a.service().submitted, b.service().submitted);
    }

    /// A service that never completes requests and keeps re-arming a timer:
    /// the shape of a livelocked retry loop.
    struct BlackHoleService {
        next_timer: u64,
    }

    impl IoService for BlackHoleService {
        fn submit(
            &mut self,
            _node: NodeId,
            now: SimTime,
            _req: IoRequest,
            _token: IoToken,
            _is_async: bool,
            sched: &mut Sched,
        ) {
            sched.timer(now + SimDuration::from_millis(10), self.next_timer);
            self.next_timer += 1;
        }

        fn on_timer(&mut self, now: SimTime, _timer: u64, sched: &mut Sched) {
            sched.timer(now + SimDuration::from_millis(10), self.next_timer);
            self.next_timer += 1;
        }
    }

    #[test]
    fn watchdog_trips_on_livelock_with_typed_report() {
        let mesh = Mesh::for_nodes(2, 1);
        let programs: Vec<Box<dyn NodeProgram>> = vec![
            Box::new(ScriptProgram::new(vec![ScriptOp::Io(IoRequest::read(
                1, 64,
            ))])),
            Box::new(ScriptProgram::new(vec![])),
        ];
        let mut e = Engine::new(
            mesh,
            CommCosts::default(),
            programs,
            BlackHoleService { next_timer: 0 },
        );
        e.set_watchdog(SimTime(0) + SimDuration::from_secs(1));
        let report = e.run();
        assert!(!report.clean());
        let hang = report.hang.expect("watchdog must trip");
        assert_eq!(
            hang.reason,
            HangReason::DeadlineExceeded {
                deadline: SimTime(0) + SimDuration::from_secs(1)
            }
        );
        assert!(hang.at > SimTime(0) + SimDuration::from_secs(1));
        assert_eq!(hang.parked_nodes, vec![0]);
        assert_eq!(hang.pending_requests.len(), 1, "the read never completed");
        assert_eq!(hang.killed_timers, 1, "the re-armed timer was abandoned");
        // Far fewer events than the livelock would otherwise generate.
        assert!(report.events < 1000);
    }

    #[test]
    fn watchdog_reports_exhausted_heap_as_stuck() {
        let mut e = engine_for(vec![vec![ScriptOp::Recv { from: 1, tag: 0 }], vec![]]);
        e.set_watchdog(SimTime(u64::MAX - 1));
        let report = e.run();
        assert!(!report.clean());
        assert_eq!(report.blocked, vec![0]);
        let hang = report.hang.expect("quiescence with parked nodes is a hang");
        assert_eq!(hang.reason, HangReason::Exhausted);
        assert_eq!(hang.parked_nodes, vec![0]);
        assert_eq!(hang.killed_timers, 0);
    }

    #[test]
    fn watchdog_stays_quiet_on_clean_and_crash_cut_runs() {
        // Clean run: deadline far out, programs finish, no report.
        let mut e = engine_for(vec![vec![ScriptOp::Compute(SimDuration::from_secs(3))]]);
        e.set_watchdog(SimTime(0) + SimDuration::from_secs(100));
        let report = e.run();
        assert!(report.clean());
        assert_eq!(report.hang, None);

        // Crash cut: abandoned events past `stop` are a crash, not a hang.
        let mut e = engine_for(vec![vec![ScriptOp::Compute(SimDuration::from_secs(3))]]);
        e.set_watchdog(SimTime(0) + SimDuration::from_secs(100));
        let report = e.run_until(SimTime(0) + SimDuration::from_secs(1));
        assert_eq!(report.hang, None);
        assert_eq!(report.blocked, vec![0]);
    }
}

//! Golden-trace regression harness: pins the SDDF digest of every workload
//! trace, and pins that the parallel sweep executor reproduces the serial
//! digests bit-for-bit.
//!
//! Digests live in `tests/goldens/trace_digests.txt`; regenerate after an
//! intentional model change with `SIO_UPDATE_GOLDENS=1 cargo test`.

mod goldens;

use sio::analysis::runner;
use sio::apps::workload::{run_workload, Backend, Workload};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf;
use sio::paragon::MachineConfig;
use sio::ppfs::PolicyConfig;

/// The smoke-scale corpus: one (name, machine, workload, backend) per
/// reproduced application, small enough to run on every `cargo test`.
fn corpus() -> Vec<(&'static str, MachineConfig, Workload, Backend)> {
    let tiny = MachineConfig::tiny(8, 4);
    vec![
        (
            "escat-small-pfs",
            tiny.clone(),
            EscatParams::small(8, 8).workload(),
            Backend::Pfs,
        ),
        (
            "escat-small-ppfs-tuned",
            tiny.clone(),
            EscatParams::small(8, 8).workload(),
            Backend::Ppfs(PolicyConfig::escat_tuned()),
        ),
        (
            "render-small-pfs",
            tiny.clone(),
            RenderParams::small(8, 4).workload(),
            Backend::Pfs,
        ),
        (
            "htf-psetup-small-pfs",
            tiny.clone(),
            HtfParams::small(8).psetup_workload(),
            Backend::Pfs,
        ),
        (
            "htf-pargos-small-pfs",
            tiny.clone(),
            HtfParams::small(8).pargos_workload(),
            Backend::Pfs,
        ),
        (
            "htf-pscf-small-pfs",
            tiny,
            HtfParams::small(8).pscf_workload(),
            Backend::Pfs,
        ),
    ]
}

fn digests(jobs: usize) -> Vec<(String, u64)> {
    runner::par_map_jobs(jobs, corpus(), |_, (name, machine, workload, backend)| {
        let out = run_workload(&machine, &workload, &backend);
        (name.to_string(), sddf::fingerprint(&out.trace))
    })
}

/// The tentpole acceptance check: sweep output is byte-identical whether the
/// corpus runs serially or fanned out over the worker pool, and both match
/// the checked-in goldens.
#[test]
fn trace_digests_match_goldens_serial_and_parallel() {
    let serial = digests(1);
    for jobs in [2, 4, 8] {
        assert_eq!(
            digests(jobs),
            serial,
            "parallel sweep (jobs={jobs}) diverged from the serial digests"
        );
    }
    goldens::check(
        "tests/goldens/trace_digests.txt",
        "Golden SDDF trace digests (FNV-1a over the binary encoding), smoke scale.",
        &serial,
    );
}

/// The digest pins the full binary encoding: a trace that round-trips
/// through SDDF keeps its fingerprint, and any event mutation changes it.
#[test]
fn fingerprint_tracks_sddf_encoding() {
    let (_, machine, workload, backend) = corpus().remove(0);
    let trace = run_workload(&machine, &workload, &backend).trace;
    let bytes = sddf::to_bytes(&trace);
    let back = sddf::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(sddf::fingerprint(&back), sddf::fingerprint(&trace));
    let mut corrupted = bytes.to_vec();
    let last = corrupted.len() - 1;
    corrupted[last] ^= 1;
    assert_ne!(
        sddf::fingerprint_bytes(&corrupted),
        sddf::fingerprint_bytes(&bytes)
    );
}

//! End-to-end crash/recovery: a checkpointed application killed mid-run
//! restarts from its last durable checkpoint inside the same deterministic
//! simulation, and the restart beats rerunning from scratch whenever any
//! epoch was durable at the crash.

use sio::analysis::recovery::{self, durable_cut, lost_work_bytes};
use sio::apps::workload::{parallel_write_kernel, run_workload, run_workload_crashable, Backend};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::IoOp;
use sio::paragon::{FaultSchedule, MachineConfig, SimTime};
use sio::ppfs::PolicyConfig;

/// A crashed paper-scale HTF (pargos) run restarts from its last durable
/// checkpoint, and crash-instant + resumed wall is strictly less than
/// crash-instant + full rerun — the checkpoint bought real time.
#[test]
fn crashed_htf_run_restarts_from_last_durable_checkpoint() {
    let machine = MachineConfig::paragon_128();
    let htf = HtfParams::paper();
    let backend = Backend::Ppfs(PolicyConfig::pargos_tuned());
    let interval = htf.records_of(0).div_ceil(6).max(1);

    let cw = htf.pargos_workload_checkpointed(interval, 0);
    let healthy = run_workload_crashable(
        &machine,
        &cw.workload,
        &backend,
        None,
        None,
        &cw.plan.covered,
    );
    let wall = healthy.report.wall;
    assert!(healthy.report.clean());

    // Crash at 70% of the healthy checkpointed wall.
    let t_crash = SimTime(wall.nanos() * 7 / 10);
    let crashed = run_workload_crashable(
        &machine,
        &cw.workload,
        &backend,
        None,
        Some(t_crash),
        &cw.plan.covered,
    );

    let units: Vec<u32> = (0..htf.nodes).map(|n| htf.records_of(n)).collect();
    let cut = durable_cut(&crashed.trace, &cw.plan, &units, t_crash);
    assert!(
        cut.epoch > 0 && cut.epoch < cw.plan.epochs,
        "crash at 70% should land between the first and last epoch, got {}/{}",
        cut.epoch,
        cw.plan.epochs
    );
    assert!(cut.commits_valid > 0);

    // Restart from the durable cut: the resumed run redoes only the tail.
    let resumed = htf.pargos_workload_checkpointed(interval, cut.epoch);
    let out = run_workload_crashable(
        &machine,
        &resumed.workload,
        &backend,
        None,
        None,
        &resumed.plan.covered,
    );
    assert!(out.report.clean());

    let ttr = t_crash.nanos() + out.report.wall.nanos();
    let rerun = t_crash.nanos() + wall.nanos();
    assert!(
        ttr < rerun,
        "time-to-recovery {ttr} must beat restart-from-scratch {rerun}"
    );

    // The resumed run skips the recovered records: it writes strictly fewer
    // covered-file bytes than the full run.
    let covered_write_bytes = |tr: &sio::core::Trace| -> u64 {
        tr.events()
            .iter()
            .filter(|e| e.op == IoOp::Write && cw.plan.covered.contains(&e.file))
            .map(|e| e.bytes)
            .sum()
    };
    assert!(
        covered_write_bytes(&out.trace) < covered_write_bytes(&healthy.trace),
        "resumed run should redo only the post-checkpoint tail"
    );
}

/// Same end-to-end shape for ESCAT on PFS: crash, derive the cut, resume,
/// and the lost-work accounting stays within the crashed run's write volume.
#[test]
fn crashed_escat_run_recovers_on_pfs() {
    let machine = MachineConfig::tiny(8, 4);
    let p = EscatParams::small(8, 8);
    let cw = p.workload_checkpointed(2, 0);
    let healthy = run_workload_crashable(
        &machine,
        &cw.workload,
        &Backend::Pfs,
        None,
        None,
        &cw.plan.covered,
    );
    let wall = healthy.report.wall;

    let t_crash = SimTime(wall.nanos() * 7 / 10);
    let crashed = run_workload_crashable(
        &machine,
        &cw.workload,
        &Backend::Pfs,
        None,
        Some(t_crash),
        &cw.plan.covered,
    );
    let units = vec![p.iters; p.nodes as usize];
    let cut = durable_cut(&crashed.trace, &cw.plan, &units, t_crash);
    assert!(cut.epoch > 0, "no durable epoch at 70% of the wall");

    let lost = lost_work_bytes(&crashed.trace, &cw.plan, &units, cut.epoch);
    let total_covered: u64 = crashed
        .trace
        .events()
        .iter()
        .filter(|e| e.op == IoOp::Write && cw.plan.covered.contains(&e.file))
        .map(|e| e.bytes)
        .sum();
    assert!(lost <= total_covered, "lost work exceeds written volume");

    let resumed = p.workload_checkpointed(2, cut.epoch);
    let out = run_workload_crashable(
        &machine,
        &resumed.workload,
        &Backend::Pfs,
        None,
        None,
        &resumed.plan.covered,
    );
    assert!(out.report.clean());
    assert!(
        out.report.wall < wall,
        "resume from epoch {} should be shorter than the full run",
        cut.epoch
    );
}

/// Suite-level invariants at paper scale: epochs bounded, recovery never
/// loses to rerun, and a durable epoch strictly beats rerunning.
#[test]
fn recover_suite_rows_are_internally_consistent() {
    let machine = MachineConfig::paragon_128();
    let rows = recovery::recover_suite_jobs(
        &machine,
        &EscatParams::paper(),
        &RenderParams::paper(),
        &HtfParams::paper(),
        4,
    );
    assert_eq!(rows.len(), 15, "suite shape changed");
    let mut some_epoch = false;
    for r in &rows {
        assert!(
            r.durable_epoch <= r.epochs,
            "{}: cut past the end",
            r.scenario
        );
        assert!(
            r.total_secs <= r.rerun_secs + 1e-9,
            "{} {} iv={}: recovery lost to rerun",
            r.workload,
            r.scenario,
            r.interval
        );
        if r.durable_epoch > 0 {
            some_epoch = true;
            assert!(
                r.saved_secs > 0.0,
                "{} {} iv={}: durable epoch {} saved nothing",
                r.workload,
                r.scenario,
                r.interval,
                r.durable_epoch
            );
        }
    }
    assert!(
        some_epoch,
        "no cell recovered any epoch — scenarios mistuned"
    );
}

/// The PPFS dirty-loss split: write-behind data lost to an I/O-node crash
/// on a checkpoint-covered file counts in both `dirty_bytes_lost` and
/// `dirty_bytes_lost_checkpointed`; with no coverage the split stays zero.
#[test]
fn dirty_loss_split_tracks_checkpoint_coverage() {
    let machine = MachineConfig::tiny(8, 4);
    let w = parallel_write_kernel(8, 48, 65_536, sio::pfs::AccessMode::MUnix);
    let policy = PolicyConfig::escat_tuned();
    let healthy = run_workload(&machine, &w, &Backend::Ppfs(policy));
    let wall = healthy.report.wall.nanos();
    let mut s = FaultSchedule::new();
    s.node_crash(SimTime(wall * 3 / 4), 0)
        .node_recover(SimTime(wall * 2), 0);

    // Kernel writes go to file 0. Covered: the split matches the total.
    let covered =
        run_workload_crashable(&machine, &w, &Backend::Ppfs(policy), Some(&s), None, &[0]);
    let cs = covered.ppfs_stats.expect("ppfs stats");
    assert!(cs.dirty_bytes_lost > 0, "crash caught no write-behind data");
    assert_eq!(
        cs.dirty_bytes_lost_checkpointed, cs.dirty_bytes_lost,
        "every lost byte was on the covered file"
    );

    // Uncovered: same loss, empty split.
    let plain = run_workload_crashable(&machine, &w, &Backend::Ppfs(policy), Some(&s), None, &[]);
    let ps = plain.ppfs_stats.expect("ppfs stats");
    assert_eq!(ps.dirty_bytes_lost, cs.dirty_bytes_lost);
    assert_eq!(ps.dirty_bytes_lost_checkpointed, 0);
}

//! Golden-digest snapshots of the X5 crash/recovery suite at full
//! 128-node scale: one digest per (workload, interval, scenario) cell over
//! a canonical rendering of every field in the row. Any drift in the
//! checkpoint commit protocol, durable-cut derivation, resume construction,
//! or lost-work accounting fails here with the cell that moved.
//!
//! Digests live in `results/golden_recover.txt`; regenerate after an
//! intentional model change with `SIO_UPDATE_GOLDENS=1 cargo test`.

mod goldens;

use sio::analysis::recovery::{self, RecoverRow};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf::fingerprint_bytes;
use sio::paragon::MachineConfig;

/// Canonical, formatting-stable rendering of one suite cell.
fn canonical(r: &RecoverRow) -> String {
    format!(
        "epoch={}/{} valid={} torn={} ckpt={:.6} ovh={:.4} crash={:.6} \
         recov={:.6} ttr={:.6} rerun={:.6} saved={:.6} lost_mb={:.6} \
         dirty_ck={}",
        r.durable_epoch,
        r.epochs,
        r.commits_valid,
        r.commits_torn,
        r.ckpt_wall_secs,
        r.overhead_pct,
        r.crash_secs,
        r.recovery_secs,
        r.total_secs,
        r.rerun_secs,
        r.saved_secs,
        r.lost_work_mb,
        r.dirty_lost_ckpt,
    )
}

#[test]
fn recover_suite_matches_goldens() {
    let machine = MachineConfig::paragon_128();
    let rows = recovery::recover_suite(
        &machine,
        &EscatParams::paper(),
        &RenderParams::paper(),
        &HtfParams::paper(),
    );
    assert_eq!(rows.len(), 15, "suite shape changed; goldens need review");
    let computed: Vec<(String, u64)> = rows
        .iter()
        .map(|r| {
            (
                format!("recover-{}-iv{}-{}", r.workload, r.interval, r.scenario),
                fingerprint_bytes(canonical(r).as_bytes()),
            )
        })
        .collect();
    goldens::check(
        "results/golden_recover.txt",
        "Golden digests of the X5 recovery suite (FNV-1a over canonical rows), paper scale.",
        &computed,
    );
}

//! Perf-counter contract (`sio::core::perf`): counters must be invisible
//! when disabled, must not perturb simulation output when enabled, and must
//! aggregate to identical totals whatever the sweep worker count.
//!
//! The counters are process-global atomics, so every assertion lives in one
//! `#[test]` — the default parallel test runner would otherwise interleave
//! submissions from concurrently running tests. This file is its own test
//! binary, so no other harness shares the process.

use sio::analysis::experiments;
use sio::apps::workload::{run_workload, Backend};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::{perf, sddf};
use sio::paragon::MachineConfig;

#[test]
fn counters_are_silent_when_disabled_inert_when_enabled_and_jobs_invariant() {
    let machine = MachineConfig::tiny(8, 4);
    let ep = EscatParams::small(4, 4);
    let rp = RenderParams::small(4, 2);
    let hp = HtfParams::small(4);
    let sweep = |jobs| experiments::fault_suite_jobs(&machine, &ep, &rp, &hp, jobs);

    // Disabled (the default): runs submit nothing.
    perf::reset();
    assert!(!perf::enabled());
    let rows_off = sweep(2);
    assert_eq!(
        perf::snapshot(),
        perf::PerfSnapshot::default(),
        "disabled counters must record nothing"
    );

    // Enabled: simulation output is byte-identical — capture must not
    // perturb the thing measured.
    perf::enable();
    let rows_on = sweep(2);
    assert_eq!(rows_off, rows_on, "enabling counters changed sweep results");
    let out_off = {
        perf::disable();
        run_workload(&machine, &ep.workload(), &Backend::Pfs)
    };
    let out_on = {
        perf::enable();
        run_workload(&machine, &ep.workload(), &Backend::Pfs)
    };
    assert_eq!(
        sddf::fingerprint(&out_off.trace),
        sddf::fingerprint(&out_on.trace),
        "enabling counters changed the trace"
    );
    assert_eq!(out_off.report, out_on.report);

    // Worker-count invariance: sums and maxima commute, so a 1-worker and
    // an 8-worker sweep of the same cells must agree on every counter.
    perf::reset();
    sweep(1);
    let serial = perf::snapshot().counters();
    perf::reset();
    sweep(8);
    let parallel = perf::snapshot().counters();
    assert_eq!(serial, parallel, "counters diverged across SIO_JOBS");
    let (runs, events, heap_peak, ..) = serial;
    assert!(runs > 0, "sweep submitted no runs");
    assert!(events > 0, "engine counted no events");
    assert!(heap_peak > 0, "heap peak never observed");

    perf::disable();
    perf::reset();
}

//! Backend conformance: every pluggable file-system backend, driven through
//! the same `IoService` runner, must honor the same *contract* on shared
//! scenarios — metadata verbs are traced once per call, `Sync` commits are
//! traced as a durability interval, scheduled faults reach the arrays, a
//! crash/recover cycle drains by retry (PFS buddy failover), replay (PPFS
//! stripe-pinned resubmission), or collective failover (CIO aggregated
//! retries) to a clean finish, interleaved writers tile a shared file with
//! no duplicate physical submissions, and per-I/O-node request accounting
//! conserves the logical byte volume.
//!
//! Timing may differ per backend, and backends may add *internal* traffic
//! (write-behind flushes, prefetch reads, collective exchange waits); the
//! application-visible traced shape and the byte conservation laws may not
//! differ. The suite enumerates `BackendRegistry::builtin()` — a new
//! backend gets every case for free the moment it is registered, with no
//! per-backend carve-outs.

use sio::apps::workload::{run_workload, run_workload_with_faults, Backend, Workload};
use sio::apps::{BackendRegistry, BackendSpec};
use sio::core::event::IoOp;
use sio::paragon::program::{IoRequest, ScriptOp};
use sio::paragon::{FaultSchedule, MachineConfig, SimTime};
use sio::pfs::{AccessMode, FileSpec};

fn m() -> MachineConfig {
    MachineConfig::tiny(4, 2)
}

/// Every backend the shipped registry knows, resolved through the single
/// naming entry point. Conformance cases iterate this — never a hard-coded
/// subset — so registering a backend opts it into the whole suite.
fn conformance_backends() -> Vec<(&'static str, Backend)> {
    BackendRegistry::builtin()
        .names()
        .into_iter()
        .map(|name| {
            (
                name,
                BackendSpec::parse(name).expect("registered backend name parses"),
            )
        })
        .collect()
}

/// Counts of the application-visible verbs only. Backend-internal traffic
/// (AsyncRead issues, IoWait exchange intervals, Flush commits) is allowed
/// to differ across backends; what the application *asked for* is not.
const LOGICAL_OPS: [IoOp; 6] = [
    IoOp::Read,
    IoOp::Write,
    IoOp::Seek,
    IoOp::Open,
    IoOp::Close,
    IoOp::Lsize,
];

fn logical_op_counts(trace: &sio::core::Trace) -> Vec<(IoOp, usize)> {
    LOGICAL_OPS
        .into_iter()
        .map(|op| (op, trace.of_op(op).count()))
        .collect()
}

/// Total bytes covered by the union of the traced extents of `op` — the
/// distinct file bytes the application actually touched, independent of
/// how many requests touched them.
fn union_bytes(trace: &sio::core::Trace, op: IoOp) -> u64 {
    let mut extents: Vec<(u64, u64)> = trace
        .of_op(op)
        .filter(|e| e.bytes > 0)
        .map(|e| (e.offset, e.offset + e.bytes))
        .collect();
    extents.sort_unstable();
    let mut total = 0;
    let mut hi = 0u64;
    for (lo, end) in extents {
        let lo = lo.max(hi);
        if end > lo {
            total += end - lo;
            hi = end;
        }
        hi = hi.max(end);
    }
    total
}

/// Open, probe the size, seek, write, re-probe, close — the metadata verbs
/// every backend must trace exactly once per call.
fn meta_workload() -> Workload {
    let ops = vec![
        ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
        ScriptOp::Io(IoRequest::lsize(0)),
        ScriptOp::Io(IoRequest::seek(0, 128 * 1024)),
        ScriptOp::Io(IoRequest::write(0, 64 * 1024)),
        ScriptOp::Io(IoRequest::lsize(0)),
        ScriptOp::Io(IoRequest::close(0)),
    ];
    Workload {
        label: "conformance-meta".to_string(),
        files: vec![FileSpec::output("f")],
        scripts: vec![ops],
        groups: Vec::new(),
    }
}

#[test]
fn metadata_verbs_trace_identically_across_backends() {
    let w = meta_workload();
    let runs: Vec<_> = conformance_backends()
        .into_iter()
        .map(|(name, b)| (name, run_workload(&m(), &w, &b)))
        .collect();
    for (name, out) in &runs {
        assert_eq!(out.trace.of_op(IoOp::Open).count(), 1, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Seek).count(), 1, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Lsize).count(), 2, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Write).count(), 1, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Close).count(), 1, "{name}");
        // The write landed at the seeked extent on every backend.
        let ev = out.trace.of_op(IoOp::Write).next().unwrap();
        assert_eq!((ev.offset, ev.bytes), (128 * 1024, 64 * 1024), "{name}");
    }
    // Identical logical shape: every backend traces the same counts for
    // the application-visible verbs.
    let (first_name, first) = &runs[0];
    for (name, out) in &runs[1..] {
        assert_eq!(
            logical_op_counts(&first.trace),
            logical_op_counts(&out.trace),
            "{first_name} vs {name}"
        );
    }
}

/// A `Sync` commit must be traced as a Flush interval spanning issue →
/// durability, after the file's write traffic has drained.
#[test]
fn sync_commits_trace_a_durability_interval() {
    let ops = vec![
        ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
        ScriptOp::Io(IoRequest::write(0, 256 * 1024)),
        ScriptOp::Io(IoRequest::sync(0)),
        ScriptOp::Io(IoRequest::close(0)),
    ];
    let w = Workload {
        label: "conformance-sync".to_string(),
        files: vec![FileSpec::output("f")],
        scripts: vec![ops],
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let out = run_workload(&m(), &w, &b);
        assert!(out.report.clean(), "{name} did not finish");
        // Exactly one commit: the Sync. All write traffic is durable by
        // then, so close flushes nothing extra on any backend.
        let flushes: Vec<_> = out.trace.of_op(IoOp::Flush).collect();
        assert_eq!(flushes.len(), 1, "{name}: {flushes:?}");
        assert!(flushes[0].duration() > 0, "{name}: zero-width commit");
    }
}

/// A scheduled disk failure must reach the backend's arrays: the run ends
/// with a degraded I/O node, whichever backend served it.
#[test]
fn fault_delivery_degrades_the_array_on_every_backend() {
    let mut schedule = FaultSchedule::new();
    schedule.disk_fail(SimTime::ZERO, 0, 0);
    let ops = vec![
        ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
        ScriptOp::Io(IoRequest::read(0, 512 * 1024)),
        ScriptOp::Io(IoRequest::close(0)),
    ];
    let w = Workload {
        label: "conformance-fault".to_string(),
        files: vec![FileSpec::input("in", 1 << 20)],
        scripts: vec![ops],
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let out = run_workload_with_faults(&m(), &w, &b, Some(&schedule));
        assert!(out.report.clean(), "{name} did not finish");
        assert!(out.degraded_nodes >= 1, "{name}: fault never delivered");
    }
}

/// A full metadata outage (both replicas crashed at t=0, never recovered)
/// must surface as *typed* `IoFault::Unavailable` completions on every
/// backend — the parked-retry machinery probes with bounded backoff, gives
/// up, and the run still terminates watchdog-clean. No backend may panic,
/// hang, or silently drop the metadata verbs: failed calls are traced like
/// successful ones.
#[test]
fn meta_outage_fails_typed_and_terminates_on_every_backend() {
    let mut schedule = FaultSchedule::new();
    schedule
        .meta_crash(SimTime::ZERO, 0)
        .meta_crash(SimTime::ZERO, 1);
    let w = meta_workload();
    for (name, b) in conformance_backends() {
        let out = run_workload_with_faults(&m(), &w, &b, Some(&schedule));
        assert!(out.report.clean(), "{name} did not terminate cleanly");
        let meta = out.meta.unwrap_or_else(|| panic!("{name}: no meta stats"));
        assert!(
            meta.unavailable > 0,
            "{name}: outage produced no typed Unavailable completion"
        );
        assert!(meta.retries > 0, "{name}: no parked-retry probes");
        // Every metadata verb the program issued is in the trace, failed
        // or not — one Open, two Lsize, one Close.
        assert_eq!(out.trace.of_op(IoOp::Open).count(), 1, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Lsize).count(), 2, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Close).count(), 1, "{name}");
    }
}

/// Link congestion moves no user data: a run with every mesh region
/// degraded from t=0 (quarter bandwidth, doubled hop latency) must finish
/// clean on every backend, accept exactly the same per-I/O-node byte
/// volume as the healthy run, and never finish faster than it.
#[test]
fn link_degraded_runs_conserve_bytes_on_every_backend() {
    let machine = m();
    let mut schedule = FaultSchedule::new();
    for region in 0..machine.io_nodes {
        schedule.link_degrade(SimTime::ZERO, region, 4.0, 2.0);
    }
    let scripts = (0..2u64)
        .map(|node| {
            vec![
                ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
                ScriptOp::Io(IoRequest::seek(0, node * 512 * 1024)),
                ScriptOp::Io(IoRequest::write(0, 512 * 1024)),
                ScriptOp::Io(IoRequest::close(0)),
            ]
        })
        .collect();
    let w = Workload {
        label: "conformance-link".to_string(),
        files: vec![FileSpec::output("f")],
        scripts,
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let healthy = run_workload(&machine, &w, &b);
        let out = run_workload_with_faults(&machine, &w, &b, Some(&schedule));
        assert!(out.report.clean(), "{name} did not finish degraded");
        assert_eq!(
            out.node_loads, healthy.node_loads,
            "{name}: congestion changed per-node byte accounting"
        );
        assert!(
            out.report.wall >= healthy.report.wall,
            "{name}: degraded run beat the healthy wall"
        );
    }
}

/// A crash/recover cycle must drain to a clean finish on every backend, via
/// that backend's own failover policy: PFS and CIO retry with backoff (then
/// buddy failover), PPFS parks stripe-pinned segments and replays them on
/// recovery. Nothing may be silently dropped.
#[test]
fn crash_recover_drains_by_retry_or_replay() {
    let mut schedule = FaultSchedule::new();
    schedule
        .node_crash(SimTime::ZERO, 0)
        .node_recover(SimTime(2_000_000_000), 0);
    let scripts = (0..2u64)
        .map(|node| {
            let mut ops = vec![ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code()))];
            for k in 0..4u64 {
                ops.push(ScriptOp::Io(IoRequest::seek(
                    0,
                    (node * 4 + k) * 256 * 1024,
                )));
                ops.push(ScriptOp::Io(IoRequest::write(0, 256 * 1024)));
            }
            ops.push(ScriptOp::Io(IoRequest::close(0)));
            ops
        })
        .collect();
    let w = Workload {
        label: "conformance-crash".to_string(),
        files: vec![FileSpec::output("f")],
        scripts,
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let out = run_workload_with_faults(&m(), &w, &b, Some(&schedule));
        assert!(out.report.clean(), "{name} did not drain after recovery");
        // All 8 writes completed and are traced despite the crash window.
        assert_eq!(out.trace.of_op(IoOp::Write).count(), 8, "{name}");
        // The drain did real recovery work, through whichever machinery the
        // backend keeps: pump retries/failovers or parked-segment replay.
        let retried = out
            .pfs_faults
            .as_ref()
            .is_some_and(|f| f.retries + f.failovers > 0);
        let replayed = out
            .ppfs_stats
            .as_ref()
            .is_some_and(|s| s.replayed_segments > 0);
        assert!(
            retried || replayed,
            "{name}: no retry/failover/replay signal after crash"
        );
    }
}

/// N writers filling a shared file with disjoint record-interleaved extents
/// must produce a byte-complete file on every backend — and must never
/// submit the same byte twice: the physical write volume accepted across
/// the I/O nodes equals the distinct logical bytes exactly.
#[test]
fn interleaved_writers_tile_the_file_without_duplicate_submissions() {
    const NODES: u64 = 4;
    const ROUNDS: u64 = 3;
    const CHUNK: u64 = 48 * 1024;
    const TOTAL: u64 = NODES * ROUNDS * CHUNK;
    let scripts = (0..NODES)
        .map(|node| {
            let mut ops = vec![
                ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
                ScriptOp::Barrier(0),
            ];
            for k in 0..ROUNDS {
                let mut req = IoRequest::write(0, CHUNK);
                req.offset = Some((k * NODES + node) * CHUNK);
                ops.push(ScriptOp::Io(req));
            }
            // Everyone reads the finished file back in full; short reads
            // clamp to EOF, so a full-length result proves completeness.
            ops.push(ScriptOp::Barrier(0));
            let mut readback = IoRequest::read(0, TOTAL);
            readback.offset = Some(0);
            ops.push(ScriptOp::Io(readback));
            ops.push(ScriptOp::Io(IoRequest::close(0)));
            ops
        })
        .collect();
    let w = Workload {
        label: "conformance-interleave".to_string(),
        files: vec![FileSpec::output("f")],
        scripts,
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let out = run_workload(&m(), &w, &b);
        assert!(out.report.clean(), "{name} did not finish");
        // Every writer's extents are traced where the script put them, and
        // together they tile [0, TOTAL) exactly.
        assert_eq!(
            out.trace.of_op(IoOp::Write).count() as u64,
            NODES * ROUNDS,
            "{name}"
        );
        assert_eq!(union_bytes(&out.trace, IoOp::Write), TOTAL, "{name}");
        let write_sum: u64 = out.trace.of_op(IoOp::Write).map(|e| e.bytes).sum();
        assert_eq!(write_sum, TOTAL, "{name}: writers overlapped");
        // Byte-complete: every node's full-length readback came back whole.
        for ev in out.trace.of_op(IoOp::Read) {
            assert_eq!(ev.bytes, TOTAL, "{name}: short readback");
        }
        // No duplicate physical submissions: the I/O nodes accepted exactly
        // the distinct logical write volume.
        let physical_writes: u64 = out.node_loads.iter().map(|l| l.write_bytes).sum();
        assert_eq!(physical_writes, TOTAL, "{name}: duplicate submissions");
    }
}

/// Per-I/O-node request accounting must conserve bytes on every backend:
/// physical writes accepted equal the distinct logical write volume, cold
/// physical reads cover at least the distinct logical read volume (caching
/// may overfetch, collectives may deduplicate — neither may conjure bytes
/// that were never read), and the load spreads across every I/O node of
/// the stripe. The read pass targets a pre-existing input file the run
/// never wrote, so no backend can serve it from a write cache.
#[test]
fn request_accounting_conserves_bytes_per_io_node() {
    const NODES: u64 = 4;
    const ROUNDS: u64 = 4;
    const CHUNK: u64 = 32 * 1024;
    const TOTAL: u64 = NODES * ROUNDS * CHUNK;
    let scripts = (0..NODES)
        .map(|node| {
            let mut ops = vec![
                ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
                ScriptOp::Io(IoRequest::open(1, AccessMode::MUnix.code())),
                ScriptOp::Barrier(0),
            ];
            for k in 0..ROUNDS {
                let mut req = IoRequest::write(0, CHUNK);
                req.offset = Some((k * NODES + node) * CHUNK);
                ops.push(ScriptOp::Io(req));
            }
            ops.push(ScriptOp::Barrier(0));
            // Each node reads its own records of the input — disjoint
            // across nodes, so the logical read union is the whole file.
            for k in 0..ROUNDS {
                let mut req = IoRequest::read(1, CHUNK);
                req.offset = Some((k * NODES + node) * CHUNK);
                ops.push(ScriptOp::Io(req));
            }
            ops.push(ScriptOp::Io(IoRequest::close(0)));
            ops.push(ScriptOp::Io(IoRequest::close(1)));
            ops
        })
        .collect();
    let w = Workload {
        label: "conformance-accounting".to_string(),
        files: vec![FileSpec::output("f"), FileSpec::input("in", TOTAL)],
        scripts,
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let out = run_workload(&m(), &w, &b);
        assert!(out.report.clean(), "{name} did not finish");
        let loads = &out.node_loads;
        assert_eq!(loads.len(), m().io_nodes as usize, "{name}");
        let physical_writes: u64 = loads.iter().map(|l| l.write_bytes).sum();
        let physical_reads: u64 = loads.iter().map(|l| l.read_bytes).sum();
        assert_eq!(
            physical_writes,
            union_bytes(&out.trace, IoOp::Write),
            "{name}: write volume not conserved"
        );
        assert!(
            physical_reads >= union_bytes(&out.trace, IoOp::Read),
            "{name}: under-read ({physical_reads} < {})",
            union_bytes(&out.trace, IoOp::Read)
        );
        // Round-robin striping spreads a whole-file pass over every I/O
        // node, whatever the backend's request shaping did.
        for (io, l) in loads.iter().enumerate() {
            assert!(l.write_reqs > 0, "{name}: io node {io} got no writes");
            assert!(l.write_bytes > 0, "{name}: io node {io} got no bytes");
            // Requests are never empty, so counts are bounded by bytes.
            assert!(l.write_reqs <= l.write_bytes, "{name}: io node {io}");
        }
        assert_eq!(union_bytes(&out.trace, IoOp::Write), TOTAL, "{name}");
    }
}

/// The burst-log wrapper's durability contract, for every inner backend in
/// the registry: a `Sync` commits at log speed (its Flush interval is far
/// shorter than the direct backend's), but by the end of a clean run every
/// acknowledged byte must have drained into the inner tier — the log holds
/// nothing, and the inner I/O nodes accepted exactly the logical volume.
/// Backends outside the log tier must report no drain-health counters.
#[test]
fn blog_sync_commits_fast_but_drains_fully_by_run_end() {
    const NODES: u64 = 2;
    const ROUNDS: u64 = 3;
    const CHUNK: u64 = 64 * 1024;
    const TOTAL: u64 = NODES * ROUNDS * CHUNK;
    let scripts = (0..NODES)
        .map(|node| {
            let mut ops = vec![
                ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
                ScriptOp::Barrier(0),
            ];
            for k in 0..ROUNDS {
                let mut req = IoRequest::write(0, CHUNK);
                req.offset = Some((k * NODES + node) * CHUNK);
                ops.push(ScriptOp::Io(req));
                ops.push(ScriptOp::Io(IoRequest::sync(0)));
            }
            ops.push(ScriptOp::Io(IoRequest::close(0)));
            ops
        })
        .collect();
    let w = Workload {
        label: "conformance-blog-drain".to_string(),
        files: vec![FileSpec::output("f")],
        scripts,
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let out = run_workload(&m(), &w, &b);
        assert!(out.report.clean(), "{name} did not finish");
        let flush_mean_ns = {
            let flushes: Vec<_> = out.trace.of_op(IoOp::Flush).collect();
            assert_eq!(flushes.len(), (NODES * ROUNDS) as usize, "{name}");
            flushes.iter().map(|e| e.duration()).sum::<u64>() / flushes.len() as u64
        };
        let physical_writes: u64 = out.node_loads.iter().map(|l| l.write_bytes).sum();
        match out.blog {
            Some(stats) => {
                // Every acknowledged byte reached the log, then the inner
                // tier; the log is empty at run end.
                assert_eq!(stats.appended_bytes, TOTAL, "{name}");
                assert_eq!(stats.drained_bytes, TOTAL, "{name}");
                assert_eq!(stats.pending_bytes, 0, "{name}: bytes stranded");
                assert_eq!(physical_writes, TOTAL, "{name}: drain volume");
                // Sync commits at local-log latency, well under the inner
                // backends' software flush path.
                assert!(
                    flush_mean_ns < 5_000_000,
                    "{name}: slow commit ({flush_mean_ns} ns)"
                );
            }
            None => {
                assert!(!name.starts_with("blog"), "{name}: missing blog stats");
                assert!(
                    flush_mean_ns >= 5_000_000,
                    "{name}: direct flush implausibly fast ({flush_mean_ns} ns)"
                );
            }
        }
    }
}

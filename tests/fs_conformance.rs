//! Backend conformance: every pluggable file-system backend, driven through
//! the same `IoService` runner, must honor the same *contract* on shared
//! scenarios — metadata verbs are traced once per call, `Sync` commits are
//! traced as a durability interval, scheduled faults reach the arrays, and a
//! crash/recover cycle drains by retry (PFS buddy failover) or replay (PPFS
//! stripe-pinned resubmission) to a clean finish.
//!
//! Timing may differ per backend; the traced *shape* may not. New backends
//! registered in `sio::apps::BackendRegistry` get this suite for free by
//! extending `conformance_backends`.

use sio::apps::workload::{run_workload, run_workload_with_faults, Backend, Workload};
use sio::apps::BackendSpec;
use sio::core::event::IoOp;
use sio::paragon::program::{IoRequest, ScriptOp};
use sio::paragon::{FaultSchedule, MachineConfig, SimTime};
use sio::pfs::{AccessMode, FileSpec};

fn m() -> MachineConfig {
    MachineConfig::tiny(4, 2)
}

/// The backends every conformance scenario runs against: one spec per
/// shipped backend family, parsed through the single naming entry point.
fn conformance_backends() -> Vec<(&'static str, Backend)> {
    ["pfs", "ppfs-wt"]
        .into_iter()
        .map(|name| {
            (
                name,
                BackendSpec::parse(name).expect("conformance backend name parses"),
            )
        })
        .collect()
}

fn op_counts(trace: &sio::core::Trace) -> Vec<(IoOp, usize)> {
    IoOp::ALL
        .into_iter()
        .map(|op| (op, trace.of_op(op).count()))
        .collect()
}

/// Open, probe the size, seek, write, re-probe, close — the metadata verbs
/// every backend must trace exactly once per call.
fn meta_workload() -> Workload {
    let ops = vec![
        ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
        ScriptOp::Io(IoRequest::lsize(0)),
        ScriptOp::Io(IoRequest::seek(0, 128 * 1024)),
        ScriptOp::Io(IoRequest::write(0, 64 * 1024)),
        ScriptOp::Io(IoRequest::lsize(0)),
        ScriptOp::Io(IoRequest::close(0)),
    ];
    Workload {
        label: "conformance-meta".to_string(),
        files: vec![FileSpec::output("f")],
        scripts: vec![ops],
        groups: Vec::new(),
    }
}

#[test]
fn metadata_verbs_trace_identically_across_backends() {
    let w = meta_workload();
    let runs: Vec<_> = conformance_backends()
        .into_iter()
        .map(|(name, b)| (name, run_workload(&m(), &w, &b)))
        .collect();
    for (name, out) in &runs {
        assert_eq!(out.trace.of_op(IoOp::Open).count(), 1, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Seek).count(), 1, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Lsize).count(), 2, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Write).count(), 1, "{name}");
        assert_eq!(out.trace.of_op(IoOp::Close).count(), 1, "{name}");
        // The write landed at the seeked extent on every backend.
        let ev = out.trace.of_op(IoOp::Write).next().unwrap();
        assert_eq!((ev.offset, ev.bytes), (128 * 1024, 64 * 1024), "{name}");
    }
    // Identical logical shape: every backend traces the same op counts.
    let (first_name, first) = &runs[0];
    for (name, out) in &runs[1..] {
        assert_eq!(
            op_counts(&first.trace),
            op_counts(&out.trace),
            "{first_name} vs {name}"
        );
    }
}

/// A `Sync` commit must be traced as a Flush interval spanning issue →
/// durability, after the file's write traffic has drained.
#[test]
fn sync_commits_trace_a_durability_interval() {
    let ops = vec![
        ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
        ScriptOp::Io(IoRequest::write(0, 256 * 1024)),
        ScriptOp::Io(IoRequest::sync(0)),
        ScriptOp::Io(IoRequest::close(0)),
    ];
    let w = Workload {
        label: "conformance-sync".to_string(),
        files: vec![FileSpec::output("f")],
        scripts: vec![ops],
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let out = run_workload(&m(), &w, &b);
        assert!(out.report.clean(), "{name} did not finish");
        // Exactly one commit: the Sync (write-through backends flush
        // nothing extra on close; the commit is the only Flush interval).
        let flushes: Vec<_> = out.trace.of_op(IoOp::Flush).collect();
        assert_eq!(flushes.len(), 1, "{name}: {flushes:?}");
        assert!(flushes[0].duration() > 0, "{name}: zero-width commit");
    }
}

/// A scheduled disk failure must reach the backend's arrays: the run ends
/// with a degraded I/O node, whichever backend served it.
#[test]
fn fault_delivery_degrades_the_array_on_every_backend() {
    let mut schedule = FaultSchedule::new();
    schedule.disk_fail(SimTime::ZERO, 0, 0);
    let ops = vec![
        ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
        ScriptOp::Io(IoRequest::read(0, 512 * 1024)),
        ScriptOp::Io(IoRequest::close(0)),
    ];
    let w = Workload {
        label: "conformance-fault".to_string(),
        files: vec![FileSpec::input("in", 1 << 20)],
        scripts: vec![ops],
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let out = run_workload_with_faults(&m(), &w, &b, Some(&schedule));
        assert!(out.report.clean(), "{name} did not finish");
        assert!(out.degraded_nodes >= 1, "{name}: fault never delivered");
    }
}

/// A crash/recover cycle must drain to a clean finish on every backend, via
/// that backend's own failover policy: PFS retries with backoff (then buddy
/// failover), PPFS parks stripe-pinned segments and replays them on
/// recovery. Nothing may be silently dropped.
#[test]
fn crash_recover_drains_by_retry_or_replay() {
    let mut schedule = FaultSchedule::new();
    schedule
        .node_crash(SimTime::ZERO, 0)
        .node_recover(SimTime(2_000_000_000), 0);
    let scripts = (0..2u64)
        .map(|node| {
            let mut ops = vec![ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code()))];
            for k in 0..4u64 {
                ops.push(ScriptOp::Io(IoRequest::seek(
                    0,
                    (node * 4 + k) * 256 * 1024,
                )));
                ops.push(ScriptOp::Io(IoRequest::write(0, 256 * 1024)));
            }
            ops.push(ScriptOp::Io(IoRequest::close(0)));
            ops
        })
        .collect();
    let w = Workload {
        label: "conformance-crash".to_string(),
        files: vec![FileSpec::output("f")],
        scripts,
        groups: Vec::new(),
    };
    for (name, b) in conformance_backends() {
        let out = run_workload_with_faults(&m(), &w, &b, Some(&schedule));
        assert!(out.report.clean(), "{name} did not drain after recovery");
        // All 8 writes completed and are traced despite the crash window.
        assert_eq!(out.trace.of_op(IoOp::Write).count(), 8, "{name}");
        match name {
            "pfs" => {
                let f = out.pfs_faults.expect("pfs reports fault counters");
                assert!(f.retries > 0, "pfs never retried into the crash window");
            }
            "ppfs-wt" => {
                let s = out.ppfs_stats.expect("ppfs reports policy counters");
                assert!(
                    s.replayed_segments > 0,
                    "ppfs never replayed parked segments"
                );
            }
            other => panic!("no drain signal defined for backend {other}"),
        }
    }
}

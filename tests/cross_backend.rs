//! Cross-backend invariants: PFS and PPFS must agree on everything
//! *logical* (operation counts, byte volumes, file population) and disagree
//! only on timing — that is what makes the §5.2 comparison meaningful.

use sio::analysis::{OpTable, SizeTable};
use sio::apps::workload::{run_workload, Backend};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::IoOp;
use sio::paragon::MachineConfig;
use sio::ppfs::PolicyConfig;

fn m() -> MachineConfig {
    MachineConfig::tiny(8, 4)
}

fn counts(trace: &sio::core::Trace) -> Vec<(IoOp, usize)> {
    IoOp::ALL
        .into_iter()
        .map(|op| (op, trace.of_op(op).count()))
        .collect()
}

#[test]
fn escat_logical_behavior_is_backend_independent() {
    let p = EscatParams::small(8, 6);
    let pfs = run_workload(&m(), &p.workload(), &Backend::Pfs);
    let ppfs = run_workload(
        &m(),
        &p.workload(),
        &Backend::Ppfs(PolicyConfig::escat_tuned()),
    );
    assert_eq!(counts(&pfs.trace), counts(&ppfs.trace));
    assert_eq!(
        SizeTable::from_trace(&pfs.trace),
        SizeTable::from_trace(&ppfs.trace)
    );
    assert_eq!(pfs.trace.data_volume(), ppfs.trace.data_volume());
}

#[test]
fn render_runs_on_ppfs_with_prefetch() {
    let p = RenderParams::small(8, 3);
    let out = run_workload(
        &m(),
        &p.workload(),
        &Backend::Ppfs(PolicyConfig::readahead(4)),
    );
    let (reads, async_reads, writes, ..) = p.expected_counts();
    assert_eq!(out.trace.of_op(IoOp::Read).count() as u64, reads);
    assert_eq!(out.trace.of_op(IoOp::AsyncRead).count() as u64, async_reads);
    assert_eq!(out.trace.of_op(IoOp::Write).count() as u64, writes);
}

#[test]
fn htf_pscf_benefits_from_caching() {
    // pscf makes 2 passes over each integral file in the small config; a
    // cache big enough for one file should serve the second pass.
    let p = HtfParams::small(4);
    let w = p.pscf_workload();
    let pfs = run_workload(&m(), &w, &Backend::Pfs);
    let policy = PolicyConfig::write_through().with_cache(256, sio::ppfs::Eviction::Lru);
    let ppfs = run_workload(&m(), &w, &Backend::Ppfs(policy));
    let read_secs = |t: &sio::core::Trace| -> f64 { OpTable::from_trace(t).secs(IoOp::Read) };
    assert!(
        read_secs(&ppfs.trace) < read_secs(&pfs.trace),
        "caching did not help: {} vs {}",
        read_secs(&ppfs.trace),
        read_secs(&pfs.trace)
    );
    assert!(ppfs.ppfs_stats.unwrap().reads_hit > 0);
}

#[test]
fn seeks_cheaper_on_ppfs_shared_files() {
    // The other §5.2 effect: client-side pointers remove the shared-file
    // seek RPC.
    let p = EscatParams::small(8, 6);
    let pfs = run_workload(&m(), &p.workload(), &Backend::Pfs);
    let ppfs = run_workload(
        &m(),
        &p.workload(),
        &Backend::Ppfs(PolicyConfig::write_through()),
    );
    let seek_secs = |t: &sio::core::Trace| -> f64 { OpTable::from_trace(t).secs(IoOp::Seek) };
    assert!(seek_secs(&ppfs.trace) * 10.0 < seek_secs(&pfs.trace));
}

//! Property-based tests (proptest) on the core data structures and
//! invariants of the stack: stripe layout, write-behind buffer, RAID-3
//! parity, statistics, trace serialization, and the pattern classifier.

use proptest::collection::vec;
use proptest::prelude::*;
use sio::core::event::{IoEvent, IoOp};
use sio::core::sddf;
use sio::core::stats::{SizeHistogram, SummaryStats};
use sio::core::trace::{Trace, TraceMeta};
use sio::paragon::raid::Raid3;
use sio::pfs::StripeLayout;
use sio::ppfs::write_behind::DirtyBuffer;
use std::collections::BTreeSet;

proptest! {
    // ---------------- stripe layout ----------------

    /// Striping conserves bytes and never produces an empty or misowned
    /// segment, for arbitrary geometry and extents.
    #[test]
    fn stripe_segments_conserve_bytes(
        unit in 1u64..200_000,
        io_nodes in 1u32..64,
        offset in 0u64..1_000_000_000,
        bytes in 0u64..50_000_000,
    ) {
        let l = StripeLayout::new(unit, io_nodes);
        let segs = l.segments(offset, bytes);
        let total: u64 = segs.iter().map(|s| s.bytes).sum();
        prop_assert_eq!(total, bytes);
        for s in &segs {
            prop_assert!(s.bytes > 0);
            prop_assert!(s.io_node < io_nodes);
        }
    }

    /// Every byte of the request maps (point-wise) into exactly one
    /// segment's node-local range — merging may reorder segments relative
    /// to the file walk, but coverage must be exact.
    #[test]
    fn stripe_segments_cover_every_byte_exactly_once(
        unit in 1u64..512,
        io_nodes in 1u32..9,
        offset in 0u64..10_000,
        bytes in 1u64..4_000,
    ) {
        let l = StripeLayout::new(unit, io_nodes);
        let segs = l.segments(offset, bytes);
        for p in offset..offset + bytes {
            let io = l.io_node_of(p);
            let local = l.local_offset_of(p);
            let covering = segs
                .iter()
                .filter(|s| {
                    s.io_node == io && s.local_offset <= local && local < s.local_offset + s.bytes
                })
                .count();
            prop_assert_eq!(covering, 1, "byte {} covered {} times", p, covering);
        }
    }

    // ---------------- write-behind buffer ----------------

    /// The dirty buffer behaves exactly like a set of dirty bytes: its
    /// aggregated drain equals the interval union of everything added.
    #[test]
    fn dirty_buffer_equals_byte_set_model(
        writes in vec((0u64..2_000, 1u64..300), 1..40)
    ) {
        let mut buf = DirtyBuffer::new();
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for &(off, len) in &writes {
            buf.add(off, len);
            model.extend(off..off + len);
        }
        prop_assert_eq!(buf.bytes(), model.len() as u64);
        let extents = buf.drain(true, 64);
        // Extents are sorted, disjoint, non-adjacent, and cover the model.
        let mut covered: BTreeSet<u64> = BTreeSet::new();
        let mut prev_end: Option<u64> = None;
        for e in &extents {
            if let Some(pe) = prev_end {
                prop_assert!(e.offset > pe, "adjacent or overlapping extents");
            }
            covered.extend(e.offset..e.end());
            prev_end = Some(e.end());
        }
        prop_assert_eq!(covered, model);
    }

    /// Chunked (non-aggregated) drain covers the same bytes in pieces no
    /// larger than the chunk.
    #[test]
    fn dirty_buffer_chunked_drain_covers_same_bytes(
        writes in vec((0u64..5_000, 1u64..500), 1..20),
        chunk in 1u64..1_000,
    ) {
        let mut a = DirtyBuffer::new();
        let mut b = DirtyBuffer::new();
        for &(off, len) in &writes {
            a.add(off, len);
            b.add(off, len);
        }
        let agg: u64 = a.drain(true, chunk).iter().map(|e| e.bytes).sum();
        let chopped = b.drain(false, chunk);
        let chop_total: u64 = chopped.iter().map(|e| e.bytes).sum();
        prop_assert_eq!(agg, chop_total);
        for e in &chopped {
            prop_assert!(e.bytes <= chunk);
        }
    }

    // ---------------- RAID-3 parity ----------------

    /// XOR reconstruction recovers any lost member from the others plus
    /// parity, for arbitrary data and any failed index.
    #[test]
    fn raid3_reconstruction_recovers_any_member(
        blocks in vec(vec(any::<u8>(), 16), 2..6),
        lost_idx in 0usize..6,
    ) {
        let lost_idx = lost_idx % blocks.len();
        let refs: Vec<&[u8]> = blocks.iter().map(|b| b.as_slice()).collect();
        let parity = Raid3::parity(&refs);
        let mut survivors: Vec<&[u8]> = refs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != lost_idx)
            .map(|(_, b)| *b)
            .collect();
        survivors.push(&parity);
        let rebuilt = Raid3::reconstruct(&survivors);
        prop_assert_eq!(rebuilt, blocks[lost_idx].clone());
    }

    // ---------------- statistics ----------------

    /// Merged summary statistics equal single-stream statistics.
    #[test]
    fn summary_stats_merge_is_exact(
        xs in vec(-1.0e6f64..1.0e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split % xs.len();
        let mut whole = SummaryStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = SummaryStats::new();
        let mut b = SummaryStats::new();
        for &x in &xs[..split] {
            a.push(x);
        }
        for &x in &xs[split..] {
            b.push(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// The size histogram's bins partition the requests: totals always add
    /// up and each value lands in exactly the bin a naive comparison picks.
    #[test]
    fn size_histogram_partitions(sizes in vec(0u64..10_000_000, 0..100)) {
        let mut h = SizeHistogram::new();
        let mut naive = [0u64; 4];
        for &s in &sizes {
            h.push(s);
            let idx = if s < 4096 { 0 } else if s < 65_536 { 1 } else if s < 262_144 { 2 } else { 3 };
            naive[idx] += 1;
        }
        prop_assert_eq!(h.as_row(), naive);
        prop_assert_eq!(h.total(), sizes.len() as u64);
    }

    // ---------------- trace serialization ----------------

    /// Any well-formed trace roundtrips through the SDDF encoding.
    #[test]
    fn sddf_roundtrips_arbitrary_traces(
        events in vec(
            (0u32..64, 0u32..32, 0u8..9, any::<u32>(), any::<u32>(), any::<u32>(), 0u32..1000),
            0..50
        ),
        label in "[a-z]{0,12}",
        nodes in 0u32..512,
    ) {
        let events: Vec<IoEvent> = events
            .into_iter()
            .map(|(node, file, op, offset, bytes, start, dur)| IoEvent {
                node,
                file,
                op: IoOp::from_u8(op).unwrap(),
                offset: offset as u64,
                bytes: bytes as u64,
                start: start as u64,
                end: start as u64 + dur as u64,
            })
            .collect();
        let trace = Trace::from_parts(
            TraceMeta { label, nodes, wall_ns: 0 },
            events,
        );
        let back = sddf::from_bytes(&sddf::to_bytes(&trace)).unwrap();
        prop_assert_eq!(back, trace);
    }

    // ---------------- engine + file system fuzz ----------------

    /// Random well-formed workloads (same barrier count on every node,
    /// reads/writes/seeks/opens in any order after an open) always run to
    /// completion on both file systems, produce valid traces, and agree on
    /// logical operation counts across backends.
    #[test]
    fn random_workloads_run_clean_on_both_backends(
        rounds in vec(vec((0u8..5, 1u64..200_000), 0..5), 1..5),
        nodes in 1u32..6,
    ) {
        use sio::apps::workload::{run_workload, Backend, Workload};
        use sio::paragon::program::{IoRequest, ScriptOp};
        use sio::paragon::{MachineConfig, SimDuration};
        use sio::pfs::{AccessMode, FileSpec};
        use sio::ppfs::PolicyConfig;

        let scripts: Vec<Vec<ScriptOp>> = (0..nodes)
            .map(|node| {
                let mut ops = vec![ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code()))];
                for round in &rounds {
                    for &(kind, size) in round {
                        let op = match kind {
                            0 => ScriptOp::Compute(SimDuration(size * 1000)),
                            1 => ScriptOp::Io(IoRequest::write(0, size)),
                            2 => ScriptOp::Io(IoRequest::read(0, size)),
                            3 => ScriptOp::Io(IoRequest::seek(0, size * node as u64)),
                            _ => ScriptOp::Io(IoRequest::flush(0)),
                        };
                        ops.push(op);
                    }
                    // Every node executes every round: barriers always match.
                    ops.push(ScriptOp::Barrier(0));
                }
                ops.push(ScriptOp::Io(IoRequest::close(0)));
                ops
            })
            .collect();
        let build = || Workload {
            label: "fuzz".to_string(),
            files: vec![FileSpec::input("f", 1 << 20)],
            scripts: scripts.clone(),
            groups: Vec::new(),
        };
        let machine = MachineConfig::tiny(nodes.max(2), 2);
        let pfs = run_workload(&machine, &build(), &Backend::Pfs);
        let ppfs = run_workload(&machine, &build(), &Backend::Ppfs(PolicyConfig::escat_tuned()));
        prop_assert!(pfs.report.clean());
        prop_assert!(ppfs.report.clean());
        pfs.trace.validate().unwrap();
        ppfs.trace.validate().unwrap();
        // Logical op counts agree across backends.
        for op in sio::core::IoOp::ALL {
            prop_assert_eq!(
                pfs.trace.of_op(op).count(),
                ppfs.trace.of_op(op).count(),
                "op {:?}", op
            );
        }
        // Every event fits inside the run (validity of timestamps).
        for t in [&pfs.trace, &ppfs.trace] {
            let wall = t.meta().wall_ns;
            for ev in t.events() {
                prop_assert!(ev.end <= wall, "event beyond wall: {:?}", ev);
            }
        }
    }

    // ---------------- classifier ----------------

    /// Pure sequential streams of any record size classify as sequential
    /// (never random), regardless of length past warm-up.
    #[test]
    fn classifier_never_calls_sequential_random(
        len in 1u64..100_000,
        count in 5usize..60,
    ) {
        use sio::core::classify::{classify_accesses, AccessPattern};
        let acc: Vec<(u64, u64)> = (0..count as u64).map(|i| (i * len, len)).collect();
        prop_assert_eq!(classify_accesses(&acc), AccessPattern::Sequential);
    }

    /// Fixed-stride streams classify as strided with the right stride.
    #[test]
    fn classifier_detects_arbitrary_strides(
        record in 1u64..5_000,
        gap in 1u64..100_000,
        count in 8usize..50,
    ) {
        use sio::core::classify::{classify_accesses, AccessPattern};
        let stride = record + gap;
        let acc: Vec<(u64, u64)> = (0..count as u64).map(|i| (i * stride, record)).collect();
        prop_assert_eq!(
            classify_accesses(&acc),
            AccessPattern::Strided { stride: stride as i64 }
        );
    }

    // ---------------- parallel sweep runner ----------------

    /// For any worker count (0 and 1 included — 0 clamps to serial) and any
    /// job list (empty and single-item included), the pool is a drop-in
    /// replacement for a serial map: same outputs, input order, and every
    /// job sees its own index.
    #[test]
    fn runner_matches_serial_map_for_any_worker_count(
        jobs in 0usize..12,
        xs in vec(any::<u64>(), 0..40),
    ) {
        use sio::analysis::runner;
        let expect: Vec<u64> = xs.iter().enumerate().map(|(i, x)| x.wrapping_mul(31) ^ i as u64).collect();
        let got = runner::par_map_jobs(jobs, xs, |i, x| x.wrapping_mul(31) ^ i as u64);
        prop_assert_eq!(got, expect);
    }

    /// A panicking job surfaces as a `JobPanic` naming the first panicking
    /// input index, without poisoning the pool or deadlocking: the
    /// surviving jobs all still run, and the very next sweep on the same
    /// pool parameters succeeds.
    #[test]
    fn runner_surfaces_panics_without_poisoning(
        jobs in 0usize..9,
        xs in vec(any::<u8>(), 1..30),
    ) {
        use sio::analysis::runner;
        use std::sync::atomic::{AtomicUsize, Ordering};

        let first_bad = xs.iter().position(|x| x % 4 == 0);
        let ran = AtomicUsize::new(0);
        let quiet = quiet_panics();
        let outcome = runner::try_par_map_jobs(jobs, xs.clone(), |_, x| {
            ran.fetch_add(1, Ordering::Relaxed);
            assert!(x % 4 != 0, "job input {x} is divisible by 4");
            u64::from(x) + 1
        });
        drop(quiet);

        match first_bad {
            Some(index) => {
                let err = outcome.expect_err("a job panicked; the sweep must error");
                prop_assert_eq!(err.index, index);
                prop_assert!(err.message.contains("divisible by 4"), "{}", err.message);
            }
            None => {
                let out = outcome.expect("no job panicked; the sweep must succeed");
                prop_assert_eq!(out, xs.iter().map(|x| u64::from(*x) + 1).collect::<Vec<_>>());
            }
        }
        // Every job ran — a panic must not starve the remaining indices.
        prop_assert_eq!(ran.load(Ordering::Relaxed), xs.len());

        // And the pool state is not poisoned: an immediately following
        // sweep with the same worker count works.
        let again = runner::par_map_jobs(jobs, vec![1u8, 2, 3], |i, x| usize::from(x) + i);
        prop_assert_eq!(again, vec![1usize, 3, 5]);
    }
}

/// Silence the default panic hook while intentionally panicking jobs run
/// (worker threads are not output-captured by the test harness); restores
/// the previous hook on drop. Hook swaps are serialized across tests.
fn quiet_panics() -> impl Drop {
    use std::sync::{Mutex, MutexGuard};
    static HOOK: Mutex<()> = Mutex::new(());
    struct Restore(Option<MutexGuard<'static, ()>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let _ = std::panic::take_hook();
            self.0.take();
        }
    }
    let guard = HOOK.lock().unwrap_or_else(|e| e.into_inner());
    std::panic::set_hook(Box::new(|_| {}));
    Restore(Some(guard))
}

// ---------------- fault schedules (X4) ----------------

proptest! {
    /// `push` keeps the schedule time-ordered with stable ties for any
    /// insertion order: among equal-time events, earlier insertions fire
    /// first. (The io_node field is used as an insertion-order tag here.)
    #[test]
    fn fault_schedule_push_is_time_ordered_with_stable_ties(
        times in vec(0u64..40, 0..64),
    ) {
        use sio::paragon::{FaultSchedule, SimTime};
        let mut s = FaultSchedule::new();
        for (tag, t) in times.iter().enumerate() {
            s.node_crash(SimTime(*t), tag as u32);
        }
        let evs = s.events();
        prop_assert_eq!(evs.len(), times.len());
        for w in evs.windows(2) {
            prop_assert!(w[0].at <= w[1].at, "out of order: {:?} then {:?}", w[0], w[1]);
            if w[0].at == w[1].at {
                prop_assert!(
                    w[0].io_node < w[1].io_node,
                    "tie broke insertion order: {:?} then {:?}", w[0], w[1]
                );
            }
        }
    }

    /// `merge` is a stable, complete interleave: every event of both inputs
    /// appears exactly once, in time order, with `self` winning ties and
    /// each input keeping its own relative order.
    #[test]
    fn fault_schedule_merge_is_stable_and_complete(
        a_times in vec(0u64..40, 0..32),
        b_times in vec(0u64..40, 0..32),
    ) {
        use sio::paragon::{FaultSchedule, SimTime};
        let build = |ts: &[u64], node: u32| {
            let mut s = FaultSchedule::new();
            for t in ts {
                s.node_crash(SimTime(*t), node);
            }
            s
        };
        let a = build(&a_times, 0);
        let b = build(&b_times, 1);
        let m = a.merge(&b);
        prop_assert_eq!(m.len(), a.len() + b.len());
        for w in m.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
            if w[0].at == w[1].at {
                // Ties resolve a-before-b, never b-before-a.
                prop_assert!(w[0].io_node <= w[1].io_node);
            }
        }
        // Each side survives as an exact subsequence.
        let side = |n: u32| -> Vec<_> {
            m.events().iter().filter(|e| e.io_node == n).copied().collect()
        };
        prop_assert_eq!(side(0), a.events().to_vec());
        prop_assert_eq!(side(1), b.events().to_vec());
    }

    /// `scattered_stalls` is a pure function of its seed: reproducible,
    /// correctly sized, in range, and time-ordered.
    #[test]
    fn scattered_stalls_is_seeded_and_in_range(
        seed in any::<u64>(),
        io_nodes in 1u32..16,
        count in 0usize..64,
    ) {
        use sio::paragon::{FaultSchedule, SimDuration};
        let horizon = SimDuration::from_secs(120);
        let stall = SimDuration::from_secs(2);
        let s1 = FaultSchedule::scattered_stalls(seed, io_nodes, count, horizon, stall);
        let s2 = FaultSchedule::scattered_stalls(seed, io_nodes, count, horizon, stall);
        prop_assert_eq!(&s1, &s2, "same seed must give the same schedule");
        prop_assert_eq!(s1.len(), count);
        for e in s1.events() {
            prop_assert!(e.io_node < io_nodes);
            prop_assert!(e.at.0 > 0 && e.at.0 < horizon.nanos());
        }
        for w in s1.events().windows(2) {
            prop_assert!(w[0].at <= w[1].at);
        }
    }

    /// The chaos-campaign generator is a pure function of `(seed, cells,
    /// io_nodes)`: reproducible, seed-sensitive, with every cell's draws in
    /// the documented bounds and its absolute schedules well-formed for any
    /// healthy wall.
    #[test]
    fn chaos_specs_are_seeded_and_in_bounds(
        seed in any::<u64>(),
        cells in 1u32..40,
        io_nodes in 1u32..16,
    ) {
        use sio::analysis::chaos::{chaos_specs, CHAOS_WORKLOADS};
        use sio::paragon::SimTime;
        let a = chaos_specs(seed, cells, io_nodes);
        prop_assert_eq!(&a, &chaos_specs(seed, cells, io_nodes),
            "same seed must give the same campaign");
        prop_assert_eq!(a.len(), cells as usize);
        for (i, s) in a.iter().enumerate() {
            prop_assert_eq!(s.cell as usize, i);
            prop_assert!(CHAOS_WORKLOADS.contains(&s.workload));
            prop_assert!(!s.faults.is_empty() && s.faults.len() <= 3);
            prop_assert!((1..=8u32).contains(&s.event_count()));
            // One draw per struck domain — the invariant checks rely on it.
            prop_assert_eq!(s.domains().len(), s.faults.len());
            if let Some(f) = s.crash_frac {
                prop_assert!((0.30..0.80).contains(&f));
            }
            // The absolute schedule is valid (in-range targets, ordered
            // events) whatever the baseline wall turns out to be.
            let sched = s.schedule(SimTime(1_000_000_000));
            prop_assert_eq!(sched.len() as u32, s.event_count());
            for w in sched.events().windows(2) {
                prop_assert!(w[0].at <= w[1].at);
            }
        }
        // A campaign spanning the registry rotation covers every backend.
        if cells >= 9 {
            let seen: BTreeSet<&str> = a.iter().map(|s| s.backend).collect();
            prop_assert_eq!(seen.len(), 9);
        }
    }
}

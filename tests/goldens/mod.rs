//! Shared golden-digest machinery for the snapshot tests
//! (`golden_traces.rs`, `golden_tables.rs`).
//!
//! A golden file is a sorted `name<TAB>%016x` table of 64-bit FNV-1a
//! digests ([`sio::core::sddf::fingerprint_bytes`]). The check fails with a
//! per-entry diff; regenerate after an *intentional* model change with:
//!
//! ```text
//! SIO_UPDATE_GOLDENS=1 cargo test --test golden_traces --test golden_tables
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Absolute path of a repo-relative golden file.
pub fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// True when the run should rewrite golden files instead of checking them.
pub fn update_mode() -> bool {
    std::env::var("SIO_UPDATE_GOLDENS").is_ok_and(|v| v == "1")
}

fn parse(contents: &str) -> BTreeMap<String, u64> {
    contents
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (name, hex) = l
                .split_once('\t')
                .unwrap_or_else(|| panic!("malformed golden line {l:?} (want name<TAB>hex)"));
            let digest = u64::from_str_radix(hex.trim(), 16)
                .unwrap_or_else(|e| panic!("malformed digest in golden line {l:?}: {e}"));
            (name.to_string(), digest)
        })
        .collect()
}

fn render(header: &str, digests: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {header}");
    let _ = writeln!(
        out,
        "# Regenerate (after an intentional model change) with: SIO_UPDATE_GOLDENS=1 cargo test"
    );
    for (name, digest) in digests {
        let _ = writeln!(out, "{name}\t{digest:016x}");
    }
    out
}

/// Compare computed digests against the golden file at `rel` (repo-relative),
/// or rewrite the file when `SIO_UPDATE_GOLDENS=1`.
pub fn check(rel: &str, header: &str, computed: &[(String, u64)]) {
    let computed: BTreeMap<String, u64> = computed.iter().cloned().collect();
    let path = repo_path(rel);
    if update_mode() {
        std::fs::write(&path, render(header, &computed))
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[goldens] rewrote {} ({} entries)",
            path.display(),
            computed.len()
        );
        return;
    }
    let contents = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); generate it with SIO_UPDATE_GOLDENS=1 cargo test",
            path.display()
        )
    });
    let expected = parse(&contents);
    let mut diff = String::new();
    for (name, want) in &expected {
        match computed.get(name) {
            None => {
                let _ = writeln!(diff, "  missing entry: {name} (golden {want:016x})");
            }
            Some(got) if got != want => {
                let _ = writeln!(diff, "  {name}: golden {want:016x} != computed {got:016x}");
            }
            Some(_) => {}
        }
    }
    for name in computed.keys() {
        if !expected.contains_key(name) {
            let _ = writeln!(diff, "  new entry not in golden file: {name}");
        }
    }
    assert!(
        diff.is_empty(),
        "golden digests in {rel} diverged:\n{diff}\
         If the change is intentional, regenerate with SIO_UPDATE_GOLDENS=1 cargo test"
    );
}

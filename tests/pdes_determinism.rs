//! The intra-run sharded engine (`paragon_sim::pdes`) must be invisible in
//! the output: for any workload, any shard count, and any worker-pool
//! width, the sharded engine produces the *same bytes* as the serial
//! engine — identical reports, identical `EnginePerf` counters, identical
//! service-level submission and completion order, identical traces.
//!
//! Two layers pin this:
//!
//! * a proptest over randomized phase-structured programs (compute jitter,
//!   sync/async I/O against an order-sensitive FIFO disk, eager message
//!   rings, barriers, broadcasts) comparing the serial engine against 1-,
//!   2-, and 8-shard runs, inline and threaded;
//! * full-stack ESCAT/RENDER/HTF runs through `run_workload` under the
//!   `SIO_SHARDS` knob, comparing trace fingerprints and engine reports.

use proptest::collection::vec;
use proptest::prelude::*;
use sio::apps::workload::{run_workload, Backend};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf;
use sio::paragon::engine::{Engine, EnginePerf, EngineReport, IoService, Sched};
use sio::paragon::mesh::{CommCosts, Mesh};
use sio::paragon::pdes::ShardedEngine;
use sio::paragon::program::{
    IoRequest, IoResult, IoToken, IoVerb, NodeProgram, ScriptOp, ScriptProgram,
};
use sio::paragon::{MachineConfig, NodeId, SimDuration, SimTime};

/// A deterministic single-queue "disk": completions are strictly FIFO in
/// submission order, so *any* divergence in the order the engine hands
/// requests to the service shifts every later completion time. This makes
/// the service a sensitive detector for event-ordering bugs — far more
/// sensitive than a fixed-latency service, where reordering two equal-cost
/// requests is invisible.
#[derive(Default)]
struct FifoDiskService {
    last_done: SimTime,
    submissions: Vec<(NodeId, IoVerb, u64, SimTime, SimTime)>,
    iowaits: Vec<(NodeId, u32, SimTime, SimTime)>,
}

impl IoService for FifoDiskService {
    fn submit(
        &mut self,
        node: NodeId,
        now: SimTime,
        req: IoRequest,
        token: IoToken,
        _is_async: bool,
        sched: &mut Sched,
    ) {
        let start = now.max(self.last_done);
        let done = start + SimDuration::from_micros(3) + SimDuration(req.bytes.max(1) * 2);
        self.last_done = done;
        self.submissions
            .push((node, req.verb, req.bytes, now, done));
        sched.complete_io(
            token,
            done,
            IoResult {
                bytes: req.bytes,
                queued: start.since(now),
                service: done.since(start),
                fault: None,
            },
        );
    }

    fn on_timer(&mut self, _now: SimTime, _timer: u64, _sched: &mut Sched) {}

    fn issue_cost(&self, _node: NodeId, _req: &IoRequest) -> SimDuration {
        SimDuration::from_micros(5)
    }

    fn on_iowait(&mut self, node: NodeId, file: u32, s: SimTime, e: SimTime) {
        self.iowaits.push((node, file, s, e));
    }
}

/// One randomized bulk-synchronous phase, expanded per node into script
/// ops. The flag bits select which machinery the phase exercises.
type Phase = (u64, u64, u8);

const ASYNC_IO: u8 = 1;
const RING: u8 = 2;
const BARRIER: u8 = 4;
const BROADCAST: u8 = 8;

/// Expand `phases` into one deterministic script per node. Message rings
/// and collectives are always fully matched, so the workload can never
/// deadlock; compute jitter is a per-node, per-phase hash so nodes arrive
/// at synchronization points in nontrivial orders.
fn scripts(n: u32, phases: &[Phase]) -> Vec<Vec<ScriptOp>> {
    (0..n)
        .map(|i| {
            let mut ops = Vec::new();
            for (p, &(spread, bytes, flags)) in phases.iter().enumerate() {
                let jitter = (u64::from(i) * 2_654_435_761 + p as u64 * 40_503) % (spread + 1);
                ops.push(ScriptOp::Compute(SimDuration::from_micros(1 + jitter)));
                let file = 1 + i;
                if flags & ASYNC_IO != 0 {
                    ops.push(ScriptOp::IoAsync(IoRequest::write(file, bytes)));
                    ops.push(ScriptOp::Compute(SimDuration::from_micros(20)));
                    ops.push(ScriptOp::WaitOldest);
                } else {
                    ops.push(ScriptOp::Io(IoRequest::read(file, bytes)));
                }
                if flags & RING != 0 {
                    ops.push(ScriptOp::Send {
                        to: (i + 1) % n,
                        bytes: bytes.min(4096),
                        tag: p as u32,
                    });
                    ops.push(ScriptOp::Recv {
                        from: (i + n - 1) % n,
                        tag: p as u32,
                    });
                }
                if flags & BROADCAST != 0 {
                    ops.push(ScriptOp::Broadcast {
                        root: (p as u32) % n,
                        bytes,
                        group: 0,
                    });
                }
                if flags & BARRIER != 0 {
                    ops.push(ScriptOp::Barrier(0));
                }
            }
            ops.push(ScriptOp::WaitAll);
            ops
        })
        .collect()
}

type Observed = (
    EngineReport,
    EnginePerf,
    Vec<(NodeId, IoVerb, u64, SimTime, SimTime)>,
    Vec<(NodeId, u32, SimTime, SimTime)>,
);

fn run_serial(n: u32, phases: &[Phase]) -> Observed {
    let mesh = Mesh::for_nodes(n.max(2), 1);
    let programs: Vec<Box<dyn NodeProgram>> = scripts(n, phases)
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram>)
        .collect();
    let mut e = Engine::new(
        mesh,
        CommCosts::default(),
        programs,
        FifoDiskService::default(),
    );
    e.set_default_watchdog();
    let report = e.run();
    let perf = e.perf();
    let s = e.into_service();
    (report, perf, s.submissions, s.iowaits)
}

fn run_sharded(n: u32, phases: &[Phase], shards: u32, threads: Option<usize>) -> Observed {
    let mesh = Mesh::for_nodes(n.max(2), 1);
    let programs: Vec<Box<dyn NodeProgram + Send>> = scripts(n, phases)
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>)
        .collect();
    let mut e = ShardedEngine::new(
        mesh,
        CommCosts::default(),
        programs,
        FifoDiskService::default(),
        shards,
    );
    if let Some(t) = threads {
        e.set_threads(t);
    }
    e.set_default_watchdog();
    let report = e.run();
    let perf = e.perf();
    let s = e.into_service();
    (report, perf, s.submissions, s.iowaits)
}

/// Expand a replay-shaped (commit-heavy) workload: long per-node chains of
/// jittered computes broken only by an occasional barrier, with a single
/// I/O phase at the end. Almost every window the sharded engine forms over
/// this is *closed* (only node resumes below the horizon), so the runs are
/// dominated by the batched per-lane commit path rather than the serial
/// pump — the exact path `repro all`'s script replays stress.
fn replay_scripts(n: u32, steps: u64, spread: u64, barrier_every: u64) -> Vec<Vec<ScriptOp>> {
    (0..n)
        .map(|i| {
            let mut ops = Vec::new();
            for k in 0..steps {
                let jitter = (u64::from(i) * 2_654_435_761 + k * 40_503) % (spread + 1);
                ops.push(ScriptOp::Compute(SimDuration::from_micros(1 + jitter)));
                if (k + 1) % barrier_every == 0 {
                    ops.push(ScriptOp::Barrier(0));
                }
            }
            ops.push(ScriptOp::Io(IoRequest::write(1 + i, 8192)));
            ops.push(ScriptOp::WaitAll);
            ops
        })
        .collect()
}

fn run_serial_scripts(n: u32, scripts: Vec<Vec<ScriptOp>>) -> Observed {
    let mesh = Mesh::for_nodes(n.max(2), 1);
    let programs: Vec<Box<dyn NodeProgram>> = scripts
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram>)
        .collect();
    let mut e = Engine::new(
        mesh,
        CommCosts::default(),
        programs,
        FifoDiskService::default(),
    );
    e.set_default_watchdog();
    let report = e.run();
    let perf = e.perf();
    let s = e.into_service();
    (report, perf, s.submissions, s.iowaits)
}

fn run_sharded_scripts(
    n: u32,
    scripts: Vec<Vec<ScriptOp>>,
    shards: u32,
    threads: Option<usize>,
) -> Observed {
    let mesh = Mesh::for_nodes(n.max(2), 1);
    let programs: Vec<Box<dyn NodeProgram + Send>> = scripts
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn NodeProgram + Send>)
        .collect();
    let mut e = ShardedEngine::new(
        mesh,
        CommCosts::default(),
        programs,
        FifoDiskService::default(),
        shards,
    );
    if let Some(t) = threads {
        e.set_threads(t);
    }
    e.set_default_watchdog();
    let report = e.run();
    let perf = e.perf();
    let s = e.into_service();
    (report, perf, s.submissions, s.iowaits)
}

proptest! {
    /// 1-, 2-, and 8-shard runs (inline and threaded) reproduce the serial
    /// engine's report, perf counters, submission order, and iowait
    /// intervals exactly, for arbitrary phase-structured workloads.
    #[test]
    fn sharded_runs_match_serial_for_random_workloads(
        n in 2u32..13,
        phases in vec((0u64..200, 1u64..65_536, 0u8..16), 1..5),
    ) {
        let baseline = run_serial(n, &phases);
        prop_assert!(baseline.0.clean(), "random workload must finish clean");
        for shards in [1u32, 2, 8] {
            let got = run_sharded(n, &phases, shards, None);
            prop_assert_eq!(&got.0, &baseline.0, "report diverged at {} shards", shards);
            prop_assert_eq!(&got.1, &baseline.1, "perf diverged at {} shards", shards);
            prop_assert_eq!(&got.2, &baseline.2, "submissions diverged at {} shards", shards);
            prop_assert_eq!(&got.3, &baseline.3, "iowaits diverged at {} shards", shards);
        }
        // Same check with a forced multi-thread worker pool (the window
        // pre-step fan-out), independent of the host's core count.
        let got = run_sharded(n, &phases, 8, Some(3));
        prop_assert_eq!(&got.0, &baseline.0, "threaded report diverged");
        prop_assert_eq!(&got.1, &baseline.1, "threaded perf diverged");
        prop_assert_eq!(&got.2, &baseline.2, "threaded submissions diverged");
        prop_assert_eq!(&got.3, &baseline.3, "threaded iowaits diverged");
    }

    /// The batched closed-window commit path reproduces the serial engine
    /// exactly on replay-shaped (commit-heavy) workloads: randomized chain
    /// lengths, compute jitter, and barrier cadence across shard counts,
    /// inline and threaded. This is the shard-local commit lever's own
    /// workload shape — a regression here means the merge-simulation's
    /// pop/seq replication diverged from the serial loop.
    #[test]
    fn replay_commit_heavy_runs_match_serial(
        n in 2u32..17,
        steps in 20u64..120,
        spread in 0u64..150,
        barrier_every in 10u64..60,
    ) {
        let baseline = run_serial_scripts(n, replay_scripts(n, steps, spread, barrier_every));
        prop_assert!(baseline.0.clean(), "replay workload must finish clean");
        for shards in [2u32, 8] {
            let got = run_sharded_scripts(
                n, replay_scripts(n, steps, spread, barrier_every), shards, None,
            );
            prop_assert_eq!(&got.0, &baseline.0, "report diverged at {} shards", shards);
            prop_assert_eq!(&got.1, &baseline.1, "perf diverged at {} shards", shards);
            prop_assert_eq!(&got.2, &baseline.2, "submissions diverged at {} shards", shards);
            prop_assert_eq!(&got.3, &baseline.3, "iowaits diverged at {} shards", shards);
        }
        let got = run_sharded_scripts(
            n, replay_scripts(n, steps, spread, barrier_every), 8, Some(3),
        );
        prop_assert_eq!(&got.0, &baseline.0, "threaded report diverged");
        prop_assert_eq!(&got.1, &baseline.1, "threaded perf diverged");
        prop_assert_eq!(&got.2, &baseline.2, "threaded submissions diverged");
    }
}

/// Full-stack shard-count invariance: the paper workloads through the real
/// PFS backend, driven by the `SIO_SHARDS` knob exactly as `repro --shards`
/// sets it, must produce byte-identical traces and reports. (The golden
/// digest suites extend this same check to every committed artifact.)
#[test]
fn workload_traces_are_shard_count_invariant() {
    let machine = MachineConfig::tiny(8, 4);
    let workloads = [
        ("escat", EscatParams::small(8, 6).workload()),
        ("render", RenderParams::small(8, 4).workload()),
        ("htf-pscf", HtfParams::small(8).pscf_workload()),
    ];
    sio::paragon::set_shards(1);
    let baselines: Vec<(u64, usize, EngineReport)> = workloads
        .iter()
        .map(|(_, w)| {
            let out = run_workload(&machine, w, &Backend::Pfs);
            (sddf::fingerprint(&out.trace), out.trace.len(), out.report)
        })
        .collect();
    for shards in [2u32, 8] {
        sio::paragon::set_shards(shards);
        for ((name, w), base) in workloads.iter().zip(&baselines) {
            let out = run_workload(&machine, w, &Backend::Pfs);
            assert_eq!(
                (sddf::fingerprint(&out.trace), out.trace.len(), out.report),
                *base,
                "{name}: shards={shards} diverged from serial"
            );
        }
    }
    sio::paragon::set_shards(0);
}

/// `repro chaos` composition under sharding: randomized fault campaigns
/// exercise the riskiest cross-shard paths — link and metadata fault
/// domains, node crashes with buddy failover and replay, crash cuts
/// landing mid-window — across every backend family. The full campaign
/// rows (timings, fault counters, invariant verdicts) must be identical at
/// every shard count; the golden chaos digest extends this same check to
/// the committed 50-cell artifact in CI.
#[test]
fn chaos_campaign_is_shard_count_invariant() {
    let machine = MachineConfig::tiny(8, 4);
    let escat = EscatParams::small(8, 6);
    let render = RenderParams::small(8, 4);
    let htf = HtfParams::small(8);
    sio::paragon::set_shards(1);
    let baseline =
        sio::analysis::chaos::chaos_suite_jobs(&machine, &escat, &render, &htf, 42, 6, 1);
    assert!(
        baseline.iter().all(|r| r.invariants_ok()),
        "chaos invariants must hold serially before comparing shard counts"
    );
    for shards in [2u32, 8] {
        sio::paragon::set_shards(shards);
        let got = sio::analysis::chaos::chaos_suite_jobs(&machine, &escat, &render, &htf, 42, 6, 1);
        assert_eq!(got, baseline, "chaos campaign diverged at {shards} shards");
    }
    sio::paragon::set_shards(0);
}

//! Golden-digest snapshots of the X6 collective-I/O suite at paper scale:
//! one digest per (workload, nodes, backend) cell over a canonical
//! rendering of the request-shape metrics. Any drift in the two-phase
//! pipeline — extent exchange cost, conforming-partition shape, aggregate
//! request accounting — fails here with the cell that moved.
//!
//! The headline invariants of the experiment are asserted directly too, so
//! a regenerated golden cannot silently encode a regression: collective
//! aggregation must keep buying ≥ 4× larger mean write requests per I/O
//! node than PFS on the interleaved ESCAT/HTF write phases, with the
//! extent-exchange cost visible, while RENDER (gateway-funneled, solo
//! openers) stays byte-identical to PFS in request shape.
//!
//! Digests live in `results/golden_cio.txt`; regenerate after an
//! intentional model change with `SIO_UPDATE_GOLDENS=1 cargo test`.

mod goldens;

use sio::analysis::experiments::{self, CioRow};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf::fingerprint_bytes;
use sio::paragon::MachineConfig;

/// Canonical, formatting-stable rendering of one suite cell.
fn canonical(r: &CioRow) -> String {
    format!(
        "wall={:.6} wreq_io={:.6} wmean_kb={:.6} rreq_io={:.6} rmean_kb={:.6} \
         exchange={:.9} collectives={}",
        r.wall_secs,
        r.write_reqs_per_io,
        r.mean_write_kb,
        r.read_reqs_per_io,
        r.mean_read_kb,
        r.exchange_secs,
        r.collectives,
    )
}

#[test]
fn cio_suite_matches_goldens_and_headline_claims() {
    let machine = MachineConfig::paragon_128();
    let rows = experiments::cio_suite(
        &machine,
        &EscatParams::paper(),
        &RenderParams::paper(),
        &HtfParams::paper(),
        &[64, 128],
    );
    assert_eq!(rows.len(), 18, "suite shape changed; goldens need review");

    let get = |w: &str, n: u32, b: &str| -> &CioRow {
        rows.iter()
            .find(|r| r.workload == w && r.nodes == n && r.backend == b)
            .expect("row present")
    };

    // Aggregation headline: on the interleaved shared-file write phases the
    // conforming partition turns each round's per-node records into one
    // large run per I/O node.
    for w in ["escat", "htf-pint"] {
        for n in [64, 128] {
            let pfs = get(w, n, "pfs");
            let cio = get(w, n, "cio");
            assert!(
                cio.mean_write_kb >= 4.0 * pfs.mean_write_kb,
                "{w}@{n}: cio {:.2} KB vs pfs {:.2} KB",
                cio.mean_write_kb,
                pfs.mean_write_kb
            );
            assert!(cio.write_reqs_per_io < pfs.write_reqs_per_io);
            // The exchange is not free — its mesh cost must be visible.
            assert!(cio.exchange_secs > 0.0, "{w}@{n}: no exchange cost");
            assert!(cio.collectives > 0);
        }
    }

    // Control: RENDER funnels all I/O through gateway solo openers, so its
    // collectives are all singletons — no exchange, PFS-identical shape.
    for n in [64, 128] {
        let pfs = get("render", n, "pfs");
        let cio = get("render", n, "cio");
        assert_eq!(cio.collectives, 0);
        assert_eq!(cio.exchange_secs, 0.0);
        assert_eq!(cio.write_reqs_per_io, pfs.write_reqs_per_io);
        assert_eq!(cio.mean_write_kb, pfs.mean_write_kb);
    }

    let computed: Vec<(String, u64)> = rows
        .iter()
        .map(|r| {
            (
                format!("cio-{}-{}-{}", r.workload, r.nodes, r.backend),
                fingerprint_bytes(canonical(r).as_bytes()),
            )
        })
        .collect();
    goldens::check(
        "results/golden_cio.txt",
        "Golden digests of the X6 collective-I/O suite (FNV-1a over canonical rows), paper scale.",
        &computed,
    );
}

//! End-to-end reproduction tests: run every paper experiment at full
//! 128-node scale and require the count/volume checks and shape claims to
//! hold, exactly as EXPERIMENTS.md reports them.

use sio::analysis::experiments;
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::paragon::MachineConfig;

fn machine() -> MachineConfig {
    MachineConfig::paragon_128()
}

#[test]
fn escat_tables_and_shapes_match_paper() {
    let a = experiments::escat(&machine(), &EscatParams::paper());
    let failed: Vec<String> = a
        .checks
        .iter()
        .filter(|c| !c.pass())
        .map(|c| c.render())
        .collect();
    assert!(
        failed.is_empty(),
        "table checks failed:\n{}",
        failed.join("\n")
    );
    let failed: Vec<String> = a
        .shapes
        .iter()
        .filter(|s| !s.pass)
        .map(|s| s.render())
        .collect();
    assert!(
        failed.is_empty(),
        "shape checks failed:\n{}",
        failed.join("\n")
    );
    // Wall time in the paper's regime: "roughly one and three quarter hours".
    let wall = a.out.wall_secs();
    assert!((4000.0..9000.0).contains(&wall), "wall {wall}");
}

#[test]
fn render_tables_and_shapes_match_paper() {
    let a = experiments::render(&machine(), &RenderParams::paper());
    let failed: Vec<String> = a
        .checks
        .iter()
        .filter(|c| !c.pass())
        .map(|c| c.render())
        .collect();
    assert!(
        failed.is_empty(),
        "table checks failed:\n{}",
        failed.join("\n")
    );
    let failed: Vec<String> = a
        .shapes
        .iter()
        .filter(|s| !s.pass)
        .map(|s| s.render())
        .collect();
    assert!(
        failed.is_empty(),
        "shape checks failed:\n{}",
        failed.join("\n")
    );
}

#[test]
fn htf_tables_and_shapes_match_paper() {
    let a = experiments::htf(&machine(), &HtfParams::paper());
    let failed: Vec<String> = a
        .checks
        .iter()
        .filter(|c| !c.pass())
        .map(|c| c.render())
        .collect();
    assert!(
        failed.is_empty(),
        "table checks failed:\n{}",
        failed.join("\n")
    );
    let failed: Vec<String> = a
        .shapes
        .iter()
        .filter(|s| !s.pass)
        .map(|s| s.render())
        .collect();
    assert!(
        failed.is_empty(),
        "shape checks failed:\n{}",
        failed.join("\n")
    );
    // Phase walls in the paper's regime (127 s / 1,173 s / 1,008 s).
    assert!((60.0..260.0).contains(&a.psetup.wall_secs()));
    assert!((700.0..1800.0).contains(&a.pargos.wall_secs()));
    assert!((500.0..1600.0).contains(&a.pscf.wall_secs()));
}

#[test]
fn ppfs_ablation_eliminates_escat_write_cost() {
    // §5.2: write-behind + aggregation "effectively eliminated" the burst
    // behavior — require at least two orders of magnitude on write+seek
    // node time at paper scale.
    let r = experiments::ppfs_ablation(&machine(), &EscatParams::paper());
    assert!(
        r.speedup > 100.0,
        "expected >100x, got {:.1}x ({:.0}s -> {:.1}s)",
        r.speedup,
        r.pfs_write_seek_secs,
        r.ppfs_write_seek_secs
    );
    // All quadrature writes were absorbed.
    assert_eq!(r.writes_buffered, 13_330);
    // Aggregation collapsed them into far fewer disk extents.
    assert!(
        r.flush_extents < r.writes_buffered / 2,
        "aggregation ineffective: {} extents from {} writes",
        r.flush_extents,
        r.writes_buffered
    );
}

#[test]
fn crossover_in_papers_band() {
    let rows = experiments::htf_crossover_paper();
    let first = rows.iter().find(|r| r.io_preferred).expect("no crossover");
    assert!(
        (2.0..=10.0).contains(&first.io_rate_mb_s),
        "crossover at {} MB/s, paper says ~5-10",
        first.io_rate_mb_s
    );
}

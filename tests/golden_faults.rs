//! Golden-digest snapshots of the X4 fault-injection suite at full
//! 128-node scale: one digest per (workload, scenario) cell over a
//! canonical rendering of every counter in the row. Any drift in fault
//! handling — retry counts, failover routing, rebuild pacing, write-behind
//! loss accounting — fails here with the cell that moved.
//!
//! Digests live in `results/golden_faults.txt`; regenerate after an
//! intentional model change with `SIO_UPDATE_GOLDENS=1 cargo test`.

mod goldens;

use sio::analysis::experiments::{self, FaultRow};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf::fingerprint_bytes;
use sio::paragon::MachineConfig;

/// Canonical, formatting-stable rendering of one suite cell.
fn canonical(r: &FaultRow) -> String {
    format!(
        "wall={:.6} read={:.6} write={:.6} retries={} failovers={} lost={} \
         timeouts={} rebuild_chunks={} rebuilt_mb={:.3} degraded={} \
         dirty_lost={} replayed={}",
        r.wall_secs,
        r.read_secs,
        r.write_secs,
        r.retries,
        r.failovers,
        r.lost_segments,
        r.timeouts,
        r.rebuild_chunks,
        r.rebuilt_mb,
        r.degraded_at_end,
        r.dirty_bytes_lost,
        r.replayed_segments,
    )
}

#[test]
fn fault_suite_matches_goldens() {
    let machine = MachineConfig::paragon_128();
    let rows = experiments::fault_suite(
        &machine,
        &EscatParams::paper(),
        &RenderParams::paper(),
        &HtfParams::paper(),
    );
    assert_eq!(rows.len(), 17, "suite shape changed; goldens need review");
    let computed: Vec<(String, u64)> = rows
        .iter()
        .map(|r| {
            (
                format!("faults-{}-{}", r.workload, r.scenario),
                fingerprint_bytes(canonical(r).as_bytes()),
            )
        })
        .collect();
    goldens::check(
        "results/golden_faults.txt",
        "Golden digests of the X4 fault suite (FNV-1a over canonical rows), paper scale.",
        &computed,
    );
}

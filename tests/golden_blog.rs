//! Golden-digest snapshots of the X7 burst-buffer suite at paper scale:
//! one digest per (workload, inner, log, drain, crash) cell over a
//! canonical rendering of the commit-latency / recovery metrics. Any
//! drift in the log tier — append/drain timing, durable-cut derivation,
//! replay accounting — fails here with the cell that moved.
//!
//! The headline invariants of the experiment are asserted directly too,
//! so a regenerated golden cannot silently encode a regression: at paper
//! scale the log tier must land checkpoint commits at least 4× faster
//! than every direct backend while keeping time-to-recovery within 2× of
//! the direct baseline, and a crashed tier must never lose acknowledged
//! epochs (`durable_epoch` counts only log-validated or drained commits).
//!
//! Digests live in `results/golden_blog.txt`; regenerate after an
//! intentional model change with `SIO_UPDATE_GOLDENS=1 cargo test`.

mod goldens;

use sio::analysis::burst::{self, BlogRow};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf::fingerprint_bytes;
use sio::paragon::MachineConfig;

/// Canonical, formatting-stable rendering of one suite cell.
fn canonical(r: &BlogRow) -> String {
    format!(
        "commit_ms={:.6} direct_ms={:.6} wall={:.6} dwall={:.6} epoch={}/{} depoch={} \
         pending_mb={:.6} replay={:.6} ttr={:.6} dttr={:.6} lost_mb={:.6} dlost_mb={:.6} \
         occ_mb={:.6} stall={:.9}",
        r.commit_ms,
        r.direct_commit_ms,
        r.wall_secs,
        r.direct_wall_secs,
        r.durable_epoch,
        r.epochs,
        r.direct_epoch,
        r.pending_mb,
        r.replay_secs,
        r.ttr_secs,
        r.direct_ttr_secs,
        r.lost_mb,
        r.direct_lost_mb,
        r.occ_peak_mb,
        r.stall_secs,
    )
}

#[test]
fn blog_suite_matches_goldens_and_headline_claims() {
    let machine = MachineConfig::paragon_128();
    let rows = burst::blog_suite_jobs(
        &machine,
        &EscatParams::paper(),
        &RenderParams::paper(),
        &HtfParams::paper(),
        sio::analysis::runner::configured_jobs(),
    );
    assert_eq!(rows.len(), 15, "suite shape changed; goldens need review");

    for r in &rows {
        // Headline: commits at local-log speed, at least 4x below the
        // direct software path, at the paper-scale burst load.
        assert!(
            r.commit_speedup >= 4.0,
            "{}+{} log{} drain{} crash{}: commit speedup only {:.1}x ({:.3} ms vs {:.3} ms)",
            r.workload,
            r.inner,
            r.log_mb,
            r.drain_mbps,
            r.crash_frac,
            r.commit_speedup,
            r.direct_commit_ms,
            r.commit_ms
        );
        // Recovery stays within 2x of the direct baseline even after
        // paying for the log replay.
        assert!(
            r.ttr_secs <= 2.0 * r.direct_ttr_secs,
            "{}+{}: TTR {:.1}s vs direct {:.1}s",
            r.workload,
            r.inner,
            r.ttr_secs,
            r.direct_ttr_secs
        );
        // No acknowledged-data loss: the cut never exceeds what was
        // committed, and a crash mid-run recovers a usable prefix.
        assert!(r.durable_epoch <= r.epochs);
        assert!(r.direct_epoch <= r.epochs);
    }

    let computed: Vec<(String, u64)> = rows
        .iter()
        .map(|r| {
            (
                format!(
                    "blog-{}-{}-log{}-drain{}-crash{}",
                    r.workload, r.inner, r.log_mb, r.drain_mbps, r.crash_frac
                ),
                fingerprint_bytes(canonical(r).as_bytes()),
            )
        })
        .collect();
    goldens::check(
        "results/golden_blog.txt",
        "Golden digests of the X7 burst-buffer suite (FNV-1a over canonical rows), paper scale.",
        &computed,
    );
}

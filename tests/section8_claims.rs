//! The paper's §8/§10 qualitative observations, checked as metrics against
//! our three application runs (full 128-node scale).

use sio::analysis::characterize::Characterization;
use sio::apps::workload::{run_workload, Backend};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::Trace;
use sio::paragon::MachineConfig;

fn m() -> MachineConfig {
    MachineConfig::paragon_128()
}

fn characterize(trace: &Trace) -> Characterization {
    Characterization::from_trace(trace)
}

#[test]
fn files_are_accessed_in_their_entirety() {
    // §8: "data files were generally read or written in their entirety".
    for (label, c) in app_characterizations() {
        let frac = c.whole_file_fraction(0.75);
        assert!(frac >= 0.8, "{label}: whole-file fraction {frac}");
    }
}

#[test]
fn many_files_are_single_node() {
    // §8: "... in many cases by a single node".
    for (label, c) in app_characterizations() {
        let frac = c.single_node_fraction();
        assert!(frac >= 0.5, "{label}: single-node fraction {frac}");
    }
    // RENDER is the extreme case: the gateway mediates ALL file I/O.
    let render = run_workload(&m(), &RenderParams::paper().workload(), &Backend::Pfs);
    assert_eq!(characterize(&render.trace).single_node_fraction(), 1.0);
}

#[test]
fn written_data_survives_to_disk() {
    // §8: "most of the data written eventually was propagated to secondary
    // storage" — little overwriting, no short-lived temporaries.
    for (label, c) in app_characterizations() {
        let frac = c.write_survival_fraction();
        assert!(frac >= 0.95, "{label}: write survival {frac}");
    }
}

#[test]
fn majority_of_streams_are_sequential() {
    // §10: "the majority of the request patterns are sequential".
    for (label, c) in app_characterizations() {
        let frac = c.sequential_stream_fraction();
        assert!(frac >= 0.6, "{label}: sequential streams {frac}");
    }
}

#[test]
fn requests_tend_to_fixed_sizes() {
    // §10: "Requests tend to be of fixed size".
    for (label, c) in app_characterizations() {
        let share = c.fixed_size_share();
        assert!(share >= 0.5, "{label}: fixed-size modal share {share}");
    }
}

#[test]
fn htf_shows_open_access_close_cycles() {
    // §10: "Cyclic behavior, with repeated patterns of file open, access,
    // and close, occur often" — pscf's checkpoint/matrix files.
    let p = HtfParams::paper();
    let pscf = run_workload(&m(), &p.pscf_workload(), &Backend::Pfs);
    let c = characterize(&pscf.trace);
    assert!(c.reopened_files() >= 2, "reopened: {}", c.reopened_files());
}

#[test]
fn escat_files_follow_section2_roles() {
    use sio::analysis::characterize::FileRole;
    let escat = run_workload(&m(), &EscatParams::paper().workload(), &Backend::Pfs);
    let c = characterize(&escat.trace);
    // Inputs 9-11 compulsory; staging 7-8 written-and-reread; outputs 3-5.
    for f in [9u32, 10, 11] {
        assert_eq!(c.files[&f].role(), FileRole::CompulsoryInput, "file {f}");
    }
    for f in [7u32, 8] {
        assert_eq!(c.files[&f].role(), FileRole::Staging, "file {f}");
    }
    for f in [3u32, 4, 5] {
        assert_eq!(c.files[&f].role(), FileRole::Output, "file {f}");
    }
    // The quadrature staging traffic dominates the class volumes, as the
    // paper's out-of-core discussion (S2) describes.
    let (compulsory, staging, output) = c.class_volumes();
    assert!(staging > compulsory && staging > output);
}

fn app_characterizations() -> Vec<(&'static str, Characterization)> {
    let machine = m();
    let escat = run_workload(&machine, &EscatParams::paper().workload(), &Backend::Pfs);
    let render = run_workload(&machine, &RenderParams::paper().workload(), &Backend::Pfs);
    let htf = HtfParams::paper();
    let psetup = run_workload(&machine, &htf.psetup_workload(), &Backend::Pfs);
    let pargos = run_workload(&machine, &htf.pargos_workload(), &Backend::Pfs);
    let pscf = run_workload(&machine, &htf.pscf_workload(), &Backend::Pfs);
    let pipeline = Trace::concat_pipeline("htf", &[&psetup.trace, &pargos.trace, &pscf.trace]);
    vec![
        ("escat", characterize(&escat.trace)),
        ("render", characterize(&render.trace)),
        ("htf", characterize(&pipeline)),
    ]
}

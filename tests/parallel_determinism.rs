//! The parallel sweep executor must be invisible in the output: every sweep
//! yields identical rows for 1, 2, and 8 workers, and concurrent
//! `run_workload` calls never cross-contaminate each other's traces (each
//! run owns its own `Tracer`; the shared-buffer `Mutex` is per-run).

use sio::analysis::{experiments, recovery, runner};
use sio::apps::workload::{run_workload, Backend, Workload};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf;
use sio::paragon::MachineConfig;

fn m() -> MachineConfig {
    MachineConfig::tiny(8, 4)
}

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Run `sweep` at 1/2/8 workers and require identical rows.
fn assert_jobs_invariant<R: PartialEq + std::fmt::Debug>(
    name: &str,
    sweep: impl Fn(usize) -> Vec<R>,
) {
    let baseline = sweep(1);
    for jobs in &WORKER_COUNTS[1..] {
        assert_eq!(
            sweep(*jobs),
            baseline,
            "{name}: jobs={jobs} diverged from serial"
        );
    }
}

#[test]
fn scaling_sweeps_are_worker_count_invariant() {
    let machine = m();
    assert_jobs_invariant("escat_scaling", |jobs| {
        experiments::escat_scaling_jobs(&machine, &[4, 8, 16], jobs)
    });
    let params = EscatParams::small(8, 6);
    assert_jobs_invariant("escat_growth", |jobs| {
        experiments::escat_growth_jobs(&machine, &params, &[1, 2, 4], jobs)
    });
    assert_jobs_invariant("htf_crossover", |jobs| {
        experiments::htf_crossover_jobs(100.0, 500.0, 20e6, &[0.1, 1.0, 10.0, 100.0], jobs)
    });
}

#[test]
fn ablation_sweeps_are_worker_count_invariant() {
    let machine = m();
    assert_jobs_invariant("mode_ablation", |jobs| {
        experiments::mode_ablation_jobs(&machine, 4, 4, 2048, jobs)
    });
    assert_jobs_invariant("policy_matrix", |jobs| {
        experiments::policy_matrix_jobs(&machine, jobs)
    });
    assert_jobs_invariant("queue_discipline", |jobs| {
        experiments::queue_discipline_jobs(&machine, 4, jobs)
    });
    assert_jobs_invariant("two_level_buffering", |jobs| {
        experiments::two_level_buffering_jobs(&machine, 4, jobs)
    });
    assert_jobs_invariant("raid_degraded", |jobs| {
        experiments::raid_degraded_jobs(&machine, jobs)
    });
}

#[test]
fn workload_mix_is_worker_count_invariant() {
    let machine = m();
    let ep = EscatParams::small(4, 5);
    let hp = HtfParams::small(4);
    assert_jobs_invariant("workload_mix", |jobs| {
        experiments::workload_mix_jobs(&machine, &ep, &hp, jobs)
    });
}

/// The X4 fault suite fans its 17 scenario cells out through the same
/// executor; injected faults (timed rebuilds, stalls, crash replay) must
/// not introduce any worker-count dependence.
#[test]
fn fault_suite_is_worker_count_invariant() {
    let machine = m();
    let ep = EscatParams::small(4, 4);
    let rp = RenderParams::small(4, 2);
    let hp = HtfParams::small(4);
    assert_jobs_invariant("fault_suite", |jobs| {
        experiments::fault_suite_jobs(&machine, &ep, &rp, &hp, jobs)
    });
}

/// The X6 collective-I/O suite fans its workload × scale × backend grid
/// out through the same executor; the two-phase exchange and aggregated
/// dispatch must not introduce any worker-count dependence.
#[test]
fn cio_suite_is_worker_count_invariant() {
    let machine = m();
    let ep = EscatParams::small(8, 4);
    let rp = RenderParams::small(8, 2);
    let hp = HtfParams::small(8);
    assert_jobs_invariant("cio_suite", |jobs| {
        experiments::cio_suite_jobs(&machine, &ep, &rp, &hp, &[4, 8], jobs)
    });
}

/// The X5 recovery suite layers crash/resume pairs and a derived durable
/// cut on top of the executor; the three fan-out phases must stay
/// worker-count invariant end to end.
#[test]
fn recover_suite_is_worker_count_invariant() {
    let machine = m();
    let ep = EscatParams::small(4, 4);
    let rp = RenderParams::small(4, 2);
    let hp = HtfParams::small(4);
    assert_jobs_invariant("recover_suite", |jobs| {
        recovery::recover_suite_jobs(&machine, &ep, &rp, &hp, jobs)
    });
}

/// Sweep-level worker fan-out (`--jobs`) and intra-run event-heap
/// sharding (`--shards`, `paragon_sim::pdes`) compose: a sweep run with
/// both knobs turned up yields the same rows as the serial baseline. The
/// sharded engine commits in the serial engine's own event order, so this
/// holds bit-exactly, not just statistically.
#[test]
fn sweeps_are_shard_count_invariant() {
    let machine = m();
    let ep = EscatParams::small(4, 4);
    let rp = RenderParams::small(4, 2);
    let hp = HtfParams::small(4);
    sio::paragon::set_shards(1);
    let baseline = experiments::fault_suite_jobs(&machine, &ep, &rp, &hp, 1);
    let scaling_baseline = experiments::escat_scaling_jobs(&machine, &[4, 8, 16], 1);
    for shards in [2u32, 8] {
        sio::paragon::set_shards(shards);
        assert_eq!(
            experiments::fault_suite_jobs(&machine, &ep, &rp, &hp, 2),
            baseline,
            "fault_suite: shards={shards} diverged from serial"
        );
        assert_eq!(
            experiments::escat_scaling_jobs(&machine, &[4, 8, 16], 2),
            scaling_baseline,
            "escat_scaling: shards={shards} diverged from serial"
        );
    }
    sio::paragon::set_shards(0);
}

/// Interleave many concurrent `run_workload` calls for *different*
/// configurations and require each to match its isolated serial run —
/// concurrent runs must never leak events into each other's trace buffers.
#[test]
fn interleaved_runs_never_cross_contaminate() {
    let machine = m();
    let configs: Vec<(&'static str, Workload, Backend)> = vec![
        ("escat", EscatParams::small(8, 6).workload(), Backend::Pfs),
        ("render", RenderParams::small(8, 4).workload(), Backend::Pfs),
        (
            "htf-pscf",
            HtfParams::small(8).pscf_workload(),
            Backend::Pfs,
        ),
        (
            "htf-pargos",
            HtfParams::small(8).pargos_workload(),
            Backend::Pfs,
        ),
    ];

    // Isolated baselines, one run at a time.
    let baselines: Vec<(u64, usize)> = configs
        .iter()
        .map(|(_, w, b)| {
            let out = run_workload(&machine, w, b);
            (sddf::fingerprint(&out.trace), out.trace.len())
        })
        .collect();

    // Now run three interleaved copies of every config at once.
    let jobs: Vec<usize> = (0..configs.len() * 3).collect();
    let outs = runner::par_map_jobs(8, jobs, |_, slot| {
        let (_, w, b) = &configs[slot % configs.len()];
        let out = run_workload(&machine, w, b);
        (sddf::fingerprint(&out.trace), out.trace.len())
    });

    for (slot, got) in outs.iter().enumerate() {
        let idx = slot % configs.len();
        assert_eq!(
            *got, baselines[idx],
            "concurrent run of {} (slot {slot}) diverged from its isolated baseline",
            configs[idx].0
        );
    }
}

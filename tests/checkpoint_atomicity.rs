//! Crash-consistency of the checkpoint commit protocol, at every layer.
//!
//! The contract: a checkpoint interrupted at **any** byte boundary either
//! validates as the previous epoch or fails validation — a reader can never
//! observe a torn half-epoch. Proven three ways: exhaustively over every
//! truncation offset of one image, property-based over arbitrary image
//! shapes and cut points, and end-to-end over arbitrary crash instants of
//! checkpointed application runs on both the PFS and PPFS backends.

use proptest::prelude::*;
use sio::analysis::recovery::{durable_cut, durable_cut_logged};
use sio::apps::workload::{run_workload_crashable, Backend};
use sio::apps::{EscatParams, HtfParams};
use sio::blog::{durable_epoch, BurstLog, LogRecord};
use sio::core::checkpoint::{progress_payload, CheckpointImage, CheckpointStore, HEADER_LEN};
use sio::paragon::{FaultSchedule, MachineConfig, SimTime};
use sio::ppfs::PolicyConfig;

/// One framed log record per epoch `1..=n`, with distinguishable payloads.
fn log_records(n: usize, payload_len: usize) -> Vec<LogRecord> {
    (0..n)
        .map(|i| LogRecord {
            epoch: i as u32 + 1,
            file: 7,
            offset: (i * payload_len) as u64,
            payload: (0..payload_len).map(|b| ((i + b) % 251) as u8).collect(),
        })
        .collect()
}

/// Byte offset of each frame boundary in a log holding `recs` in order.
fn frame_boundaries(recs: &[LogRecord]) -> Vec<usize> {
    recs.iter()
        .scan(0usize, |acc, r| {
            *acc += r.framed_len();
            Some(*acc)
        })
        .collect()
}

fn image(node: u32, epoch: u32, payload_len: usize) -> CheckpointImage {
    CheckpointImage {
        app_id: 7,
        node,
        epoch,
        payload: progress_payload(7, node, epoch, payload_len),
    }
}

/// Every proper prefix of the next epoch's image is rejected, and the slot
/// keeps reporting the previous epoch — checked at every byte boundary.
#[test]
fn every_truncation_offset_preserves_previous_epoch() {
    let mut store = CheckpointStore::new();
    store
        .try_commit("slot", &image(0, 1, 480).encode())
        .unwrap();
    let full = image(0, 2, 480).encode();
    for cut in 0..full.len() {
        let mut probe = store.clone();
        assert!(
            probe.try_commit("slot", &full[..cut]).is_err(),
            "prefix of {cut}/{} bytes validated",
            full.len()
        );
        assert_eq!(
            probe.latest_epoch("slot"),
            Some(1),
            "torn write moved the slot"
        );
    }
    assert_eq!(store.try_commit("slot", &full), Ok(2));
}

proptest! {
    /// Arbitrary image shape, arbitrary cut: a truncated commit never
    /// advances the slot, a whole one always does.
    #[test]
    fn truncated_commit_is_rejected(
        payload_len in 0usize..4_000,
        node in 0u32..256,
        cut_seed in 0u64..u64::MAX,
    ) {
        let mut store = CheckpointStore::new();
        store.try_commit("s", &image(node, 1, payload_len).encode()).unwrap();
        let full = image(node, 2, payload_len).encode();
        let cut = (cut_seed % full.len() as u64) as usize;
        prop_assert!(store.try_commit("s", &full[..cut]).is_err());
        prop_assert_eq!(store.latest_epoch("s"), Some(1));
        prop_assert_eq!(store.try_commit("s", &full), Ok(2));
    }

    /// A single flipped byte anywhere in the image fails validation: the
    /// checksum covers the header fields and the payload alike.
    #[test]
    fn corrupted_byte_never_validates(
        payload_len in 0usize..4_000,
        pos_seed in 0u64..u64::MAX,
        flip in 1u64..256,
    ) {
        let mut store = CheckpointStore::new();
        let mut bytes = image(3, 1, payload_len).encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip as u8;
        prop_assert!(store.try_commit("s", &bytes).is_err(), "corrupt byte at {} validated", pos);
        prop_assert_eq!(store.latest_epoch("s"), None);
    }

    /// An image shorter than the header can never decode.
    #[test]
    fn header_prefix_never_decodes(len in 0usize..HEADER_LEN) {
        let bytes = image(0, 1, 64).encode();
        prop_assert!(CheckpointImage::decode(&bytes[..len]).is_err());
    }

    /// End-to-end on the PFS backend: crash an ESCAT checkpointed run at an
    /// arbitrary instant. The recovered cut is always a whole epoch within
    /// range, every commit observed in the trace either validated or was
    /// rejected as torn, and the cut grows monotonically with crash time —
    /// exactly the "previous epoch or nothing" contract.
    #[test]
    fn pfs_crash_at_any_instant_yields_whole_epoch(
        f1 in 0.02f64..0.98,
        f2 in 0.02f64..0.98,
    ) {
        let machine = MachineConfig::tiny(4, 2);
        let p = EscatParams::small(4, 6);
        let cw = p.workload_checkpointed(2, 0);
        let healthy = run_workload_crashable(
            &machine, &cw.workload, &Backend::Pfs, None, None, &cw.plan.covered,
        );
        let wall = healthy.report.wall.nanos();
        let units = vec![p.iters; p.nodes as usize];
        let (lo, hi) = (f1.min(f2), f1.max(f2));
        let mut cuts = Vec::new();
        for f in [lo, hi] {
            let t = SimTime((wall as f64 * f) as u64);
            let crashed = run_workload_crashable(
                &machine, &cw.workload, &Backend::Pfs, None, Some(t), &cw.plan.covered,
            );
            let cut = durable_cut(&crashed.trace, &cw.plan, &units, t);
            prop_assert!(cut.epoch <= cw.plan.epochs);
            let traced_commits = crashed
                .trace
                .events()
                .iter()
                .filter(|e| e.file == cw.plan.file && e.op == sio::core::IoOp::Write)
                .count() as u32;
            prop_assert_eq!(cut.commits_valid + cut.commits_torn, traced_commits);
            cuts.push(cut.epoch);
        }
        prop_assert!(cuts[0] <= cuts[1], "durable cut shrank as the crash moved later");
    }

    /// The same contract on the PPFS write-behind backend, where commits
    /// ride through the client cache and explicit syncs.
    #[test]
    fn ppfs_crash_at_any_instant_yields_whole_epoch(frac in 0.02f64..0.98) {
        let machine = MachineConfig::tiny(4, 2);
        let htf = HtfParams::small(4);
        let cw = htf.pargos_workload_checkpointed(1, 0);
        let backend = Backend::Ppfs(PolicyConfig::pargos_tuned());
        let healthy = run_workload_crashable(
            &machine, &cw.workload, &backend, None, None, &cw.plan.covered,
        );
        let wall = healthy.report.wall.nanos();
        let units: Vec<u32> = (0..htf.nodes).map(|n| htf.records_of(n)).collect();
        let t = SimTime((wall as f64 * frac) as u64);
        let crashed = run_workload_crashable(
            &machine, &cw.workload, &backend, None, Some(t), &cw.plan.covered,
        );
        let cut = durable_cut(&crashed.trace, &cw.plan, &units, t);
        prop_assert!(cut.epoch <= cw.plan.epochs);
        // Whatever the cut, a resumed workload can be built from it and its
        // plan agrees on the slot layout (no half-epoch state leaks out).
        let resumed = htf.pargos_workload_checkpointed(1, cut.epoch);
        prop_assert_eq!(resumed.plan.start_epoch, cut.epoch);
        prop_assert_eq!(resumed.plan.file, cw.plan.file);
    }
}

// ---------------------------------------------------------------------------
// The burst-log tier: the same "whole epoch or nothing" contract must hold
// when commits land in the host-side log first and reach the backend via the
// background drain (DESIGN.md §5).
// ---------------------------------------------------------------------------

proptest! {
    /// A log truncated at **any** byte replays exactly the whole-frame
    /// prefix: a torn tail frame never validates, and no valid frame before
    /// the cut is lost.
    #[test]
    fn log_truncated_at_any_byte_replays_exact_frame_prefix(
        n in 1usize..12,
        payload_len in 0usize..300,
        cut_seed in 0u64..u64::MAX,
    ) {
        let recs = log_records(n, payload_len);
        let mut log = BurstLog::new();
        for r in &recs {
            log.append(r);
        }
        let bytes = log.as_bytes();
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let replayed = BurstLog::replay(&bytes[..cut]);
        let whole = frame_boundaries(&recs)
            .iter()
            .filter(|&&b| b <= cut)
            .count();
        prop_assert_eq!(replayed.as_slice(), &recs[..whole]);
    }

    /// A flipped byte anywhere in the log stops replay at the frame it
    /// lands in: every earlier frame survives, the damaged one and
    /// everything after it are rejected (replay never resynchronizes past
    /// a bad checksum).
    #[test]
    fn log_corrupt_byte_stops_replay_at_damaged_frame(
        n in 1usize..12,
        payload_len in 1usize..300,
        pos_seed in 0u64..u64::MAX,
        flip in 1u64..256,
    ) {
        let recs = log_records(n, payload_len);
        let mut log = BurstLog::new();
        for r in &recs {
            log.append(r);
        }
        let mut bytes = log.as_bytes().to_vec();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip as u8;
        let damaged = frame_boundaries(&recs).iter().filter(|&&b| b <= pos).count();
        let replayed = BurstLog::replay(&bytes);
        prop_assert_eq!(replayed.as_slice(), &recs[..damaged]);
    }

    /// The durable-cut OR rule: an epoch is durable iff every epoch up to
    /// it either replays from the log **or** finished draining. Checked
    /// against a direct reference computation over arbitrary torn logs and
    /// arbitrary drained subsets.
    #[test]
    fn durable_epoch_matches_or_rule_reference(
        n in 0usize..16,
        payload_len in 0usize..128,
        drained_mask in 0u32..65_536,
        cut_seed in 0u64..u64::MAX,
    ) {
        let recs = log_records(n, payload_len);
        let mut log = BurstLog::new();
        for r in &recs {
            log.append(r);
        }
        let bytes = log.as_bytes();
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let replayed = BurstLog::replay(&bytes[..cut]);
        let drained: Vec<u32> = (1..=n as u32)
            .filter(|e| drained_mask & (1 << (e - 1)) != 0)
            .collect();
        let covered = |e: u32| {
            replayed.iter().any(|r| r.epoch == e) || drained.contains(&e)
        };
        let mut expect = 0u32;
        while expect < n as u32 && covered(expect + 1) {
            expect += 1;
        }
        prop_assert_eq!(durable_epoch(&replayed, &drained), expect);
    }

    /// Crash during GC: garbage collection reclaims drained records at
    /// frame boundaries only, so a log torn at any byte after a GC replays
    /// a whole-frame prefix of the *surviving* records — reclaimed frames
    /// never resurrect, kept frames never tear retroactively.
    #[test]
    fn gc_then_torn_tail_never_resurrects_reclaimed_frames(
        n in 1usize..12,
        payload_len in 0usize..200,
        k_seed in 0u64..u64::MAX,
        cut_seed in 0u64..u64::MAX,
    ) {
        let recs = log_records(n, payload_len);
        let mut log = BurstLog::new();
        for r in &recs {
            log.append(r);
        }
        let k = (k_seed % (n as u64 + 1)) as usize;
        log.gc(k);
        let kept = &recs[k..];
        let bytes = log.as_bytes();
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let replayed = BurstLog::replay(&bytes[..cut]);
        let whole = frame_boundaries(kept).iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(replayed.as_slice(), &kept[..whole]);
        prop_assert!(replayed.iter().all(|r| r.epoch > k as u32));
    }

    /// End-to-end through the log tier on every inner backend: crash a
    /// checkpointed run at an arbitrary instant and derive the log-aware
    /// durable cut. The cut is always a whole epoch in range, every traced
    /// commit is accounted valid or torn, and a run resumed from the cut
    /// finishes with the full image durable — the recovered state is the
    /// last acknowledged epoch, with no torn or duplicated extents.
    #[test]
    fn blog_crash_at_any_instant_recovers_acknowledged_epoch(
        frac in 0.02f64..0.98,
        inner_idx in 0usize..3,
    ) {
        let inner = ["blog+pfs", "blog+ppfs", "blog+cio"][inner_idx];
        let machine = MachineConfig::tiny(4, 2);
        let p = EscatParams::small(4, 6);
        let cw = p.workload_checkpointed(2, 0);
        let backend = Backend::parse(inner).expect("registry name");
        let units = vec![p.iters; p.nodes as usize];
        let healthy = run_workload_crashable(
            &machine, &cw.workload, &backend, None, None, &cw.plan.covered,
        );
        let wall = healthy.report.wall.nanos();

        let t = SimTime((wall as f64 * frac) as u64);
        let crashed = run_workload_crashable(
            &machine, &cw.workload, &backend, None, Some(t), &cw.plan.covered,
        );
        let cut = durable_cut_logged(&crashed.trace, &cw.plan, &units, t);
        prop_assert!(cut.epoch <= cw.plan.epochs);
        let traced_commits = crashed
            .trace
            .events()
            .iter()
            .filter(|e| e.file == cw.plan.file && e.op == sio::core::IoOp::Write)
            .count() as u32;
        prop_assert_eq!(cut.commits_valid + cut.commits_torn, traced_commits);

        // A crash after the final commit leaves nothing to resume; the
        // durable-image check below needs at least one remaining epoch.
        if cut.epoch < cw.plan.epochs {
            let resumed = p.workload_checkpointed(2, cut.epoch);
            prop_assert_eq!(resumed.plan.start_epoch, cut.epoch);
            let out = run_workload_crashable(
                &machine, &resumed.workload, &backend, None, None, &resumed.plan.covered,
            );
            let stats = out.blog.expect("log tier ran");
            prop_assert_eq!(stats.pending_bytes, 0, "drain incomplete at run end");
            let full = durable_cut_logged(&out.trace, &resumed.plan, &units, out.report.wall);
            prop_assert_eq!(full.epoch, resumed.plan.epochs);
            prop_assert_eq!(full.commits_torn, 0, "torn extent in a healthy resume");
        }
    }

    /// The drain/crash race under I/O-node faults: an I/O node crashes
    /// (and recovers) while the drain is pumping log frames into the
    /// backend, and the application dies at an arbitrary instant on top of
    /// it. Whatever interleaving results, the durable cut stays a whole
    /// in-range epoch and a resume from it completes with every commit
    /// intact — drain retries/failovers never duplicate or tear an extent.
    #[test]
    fn drain_crash_race_with_io_node_fault_keeps_cut_consistent(
        frac in 0.05f64..0.95,
        fault_frac in 0.05f64..0.95,
        io_node in 0u32..2,
    ) {
        let machine = MachineConfig::tiny(4, 2);
        let p = EscatParams::small(4, 6);
        let cw = p.workload_checkpointed(2, 0);
        let backend = Backend::parse("blog+pfs").expect("registry name");
        let units = vec![p.iters; p.nodes as usize];
        let healthy = run_workload_crashable(
            &machine, &cw.workload, &backend, None, None, &cw.plan.covered,
        );
        let wall = healthy.report.wall.nanos();

        let t_fault = SimTime((wall as f64 * fault_frac) as u64);
        let t_heal = SimTime(t_fault.nanos() + wall / 20);
        let mut faults = FaultSchedule::new();
        faults.node_crash(t_fault, io_node).node_recover(t_heal, io_node);

        let t = SimTime((wall as f64 * frac) as u64);
        let crashed = run_workload_crashable(
            &machine, &cw.workload, &backend, Some(&faults), Some(t), &cw.plan.covered,
        );
        let cut = durable_cut_logged(&crashed.trace, &cw.plan, &units, t);
        prop_assert!(cut.epoch <= cw.plan.epochs);

        if cut.epoch < cw.plan.epochs {
            let resumed = p.workload_checkpointed(2, cut.epoch);
            let out = run_workload_crashable(
                &machine, &resumed.workload, &backend, None, None, &resumed.plan.covered,
            );
            let full = durable_cut_logged(&out.trace, &resumed.plan, &units, out.report.wall);
            prop_assert_eq!(full.epoch, resumed.plan.epochs);
            prop_assert_eq!(full.commits_torn, 0);
        }
    }
}

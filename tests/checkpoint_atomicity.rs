//! Crash-consistency of the checkpoint commit protocol, at every layer.
//!
//! The contract: a checkpoint interrupted at **any** byte boundary either
//! validates as the previous epoch or fails validation — a reader can never
//! observe a torn half-epoch. Proven three ways: exhaustively over every
//! truncation offset of one image, property-based over arbitrary image
//! shapes and cut points, and end-to-end over arbitrary crash instants of
//! checkpointed application runs on both the PFS and PPFS backends.

use proptest::prelude::*;
use sio::analysis::recovery::durable_cut;
use sio::apps::workload::{run_workload_crashable, Backend};
use sio::apps::{EscatParams, HtfParams};
use sio::core::checkpoint::{progress_payload, CheckpointImage, CheckpointStore, HEADER_LEN};
use sio::paragon::{MachineConfig, SimTime};
use sio::ppfs::PolicyConfig;

fn image(node: u32, epoch: u32, payload_len: usize) -> CheckpointImage {
    CheckpointImage {
        app_id: 7,
        node,
        epoch,
        payload: progress_payload(7, node, epoch, payload_len),
    }
}

/// Every proper prefix of the next epoch's image is rejected, and the slot
/// keeps reporting the previous epoch — checked at every byte boundary.
#[test]
fn every_truncation_offset_preserves_previous_epoch() {
    let mut store = CheckpointStore::new();
    store
        .try_commit("slot", &image(0, 1, 480).encode())
        .unwrap();
    let full = image(0, 2, 480).encode();
    for cut in 0..full.len() {
        let mut probe = store.clone();
        assert!(
            probe.try_commit("slot", &full[..cut]).is_err(),
            "prefix of {cut}/{} bytes validated",
            full.len()
        );
        assert_eq!(
            probe.latest_epoch("slot"),
            Some(1),
            "torn write moved the slot"
        );
    }
    assert_eq!(store.try_commit("slot", &full), Ok(2));
}

proptest! {
    /// Arbitrary image shape, arbitrary cut: a truncated commit never
    /// advances the slot, a whole one always does.
    #[test]
    fn truncated_commit_is_rejected(
        payload_len in 0usize..4_000,
        node in 0u32..256,
        cut_seed in 0u64..u64::MAX,
    ) {
        let mut store = CheckpointStore::new();
        store.try_commit("s", &image(node, 1, payload_len).encode()).unwrap();
        let full = image(node, 2, payload_len).encode();
        let cut = (cut_seed % full.len() as u64) as usize;
        prop_assert!(store.try_commit("s", &full[..cut]).is_err());
        prop_assert_eq!(store.latest_epoch("s"), Some(1));
        prop_assert_eq!(store.try_commit("s", &full), Ok(2));
    }

    /// A single flipped byte anywhere in the image fails validation: the
    /// checksum covers the header fields and the payload alike.
    #[test]
    fn corrupted_byte_never_validates(
        payload_len in 0usize..4_000,
        pos_seed in 0u64..u64::MAX,
        flip in 1u64..256,
    ) {
        let mut store = CheckpointStore::new();
        let mut bytes = image(3, 1, payload_len).encode();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip as u8;
        prop_assert!(store.try_commit("s", &bytes).is_err(), "corrupt byte at {} validated", pos);
        prop_assert_eq!(store.latest_epoch("s"), None);
    }

    /// An image shorter than the header can never decode.
    #[test]
    fn header_prefix_never_decodes(len in 0usize..HEADER_LEN) {
        let bytes = image(0, 1, 64).encode();
        prop_assert!(CheckpointImage::decode(&bytes[..len]).is_err());
    }

    /// End-to-end on the PFS backend: crash an ESCAT checkpointed run at an
    /// arbitrary instant. The recovered cut is always a whole epoch within
    /// range, every commit observed in the trace either validated or was
    /// rejected as torn, and the cut grows monotonically with crash time —
    /// exactly the "previous epoch or nothing" contract.
    #[test]
    fn pfs_crash_at_any_instant_yields_whole_epoch(
        f1 in 0.02f64..0.98,
        f2 in 0.02f64..0.98,
    ) {
        let machine = MachineConfig::tiny(4, 2);
        let p = EscatParams::small(4, 6);
        let cw = p.workload_checkpointed(2, 0);
        let healthy = run_workload_crashable(
            &machine, &cw.workload, &Backend::Pfs, None, None, &cw.plan.covered,
        );
        let wall = healthy.report.wall.nanos();
        let units = vec![p.iters; p.nodes as usize];
        let (lo, hi) = (f1.min(f2), f1.max(f2));
        let mut cuts = Vec::new();
        for f in [lo, hi] {
            let t = SimTime((wall as f64 * f) as u64);
            let crashed = run_workload_crashable(
                &machine, &cw.workload, &Backend::Pfs, None, Some(t), &cw.plan.covered,
            );
            let cut = durable_cut(&crashed.trace, &cw.plan, &units, t);
            prop_assert!(cut.epoch <= cw.plan.epochs);
            let traced_commits = crashed
                .trace
                .events()
                .iter()
                .filter(|e| e.file == cw.plan.file && e.op == sio::core::IoOp::Write)
                .count() as u32;
            prop_assert_eq!(cut.commits_valid + cut.commits_torn, traced_commits);
            cuts.push(cut.epoch);
        }
        prop_assert!(cuts[0] <= cuts[1], "durable cut shrank as the crash moved later");
    }

    /// The same contract on the PPFS write-behind backend, where commits
    /// ride through the client cache and explicit syncs.
    #[test]
    fn ppfs_crash_at_any_instant_yields_whole_epoch(frac in 0.02f64..0.98) {
        let machine = MachineConfig::tiny(4, 2);
        let htf = HtfParams::small(4);
        let cw = htf.pargos_workload_checkpointed(1, 0);
        let backend = Backend::Ppfs(PolicyConfig::pargos_tuned());
        let healthy = run_workload_crashable(
            &machine, &cw.workload, &backend, None, None, &cw.plan.covered,
        );
        let wall = healthy.report.wall.nanos();
        let units: Vec<u32> = (0..htf.nodes).map(|n| htf.records_of(n)).collect();
        let t = SimTime((wall as f64 * frac) as u64);
        let crashed = run_workload_crashable(
            &machine, &cw.workload, &backend, None, Some(t), &cw.plan.covered,
        );
        let cut = durable_cut(&crashed.trace, &cw.plan, &units, t);
        prop_assert!(cut.epoch <= cw.plan.epochs);
        // Whatever the cut, a resumed workload can be built from it and its
        // plan agrees on the slot layout (no half-epoch state leaks out).
        let resumed = htf.pargos_workload_checkpointed(1, cut.epoch);
        prop_assert_eq!(resumed.plan.start_epoch, cut.epoch);
        prop_assert_eq!(resumed.plan.file, cw.plan.file);
    }
}

//! Golden-digest snapshots of the X8 chaos campaign at paper scale: one
//! digest per cell of the seed-42, 50-cell campaign over a canonical
//! rendering of the measured outcome. The campaign is a pure function of
//! its seed, so any drift in fault injection, retry/backoff calibration,
//! buddy failover, link congestion, metadata parking, or durable-cut
//! derivation fails here with the exact cell that moved.
//!
//! The campaign's own invariants are asserted directly too, so a
//! regenerated golden can never encode a hang, an untyped fault, a
//! conservation violation, or an out-of-range durable cut: every cell
//! must terminate watchdog-clean with all five per-cell invariants
//! holding (see `sio::analysis::chaos`).
//!
//! Digests live in `results/golden_chaos.txt`; regenerate after an
//! intentional model change with `SIO_UPDATE_GOLDENS=1 cargo test`.
//!
//! A larger sweep (4× the golden campaign, different seed, invariants
//! only — no digests) runs when `SIO_CHAOS_FULL=1` is set; CI runs it
//! nightly.

mod goldens;

use sio::analysis::chaos::{self, ChaosRow};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf::fingerprint_bytes;
use sio::paragon::MachineConfig;

/// The golden campaign: seed 42, 50 cells — enough to rotate every
/// registered backend through all three workloads with varied draws.
const GOLDEN_SEED: u64 = 42;
const GOLDEN_CELLS: u32 = 50;

fn paper_campaign(seed: u64, cells: u32) -> Vec<ChaosRow> {
    chaos::chaos_suite_jobs(
        &MachineConfig::paragon_128(),
        &EscatParams::paper(),
        &RenderParams::paper(),
        &HtfParams::paper(),
        seed,
        cells,
        sio::analysis::runner::configured_jobs(),
    )
}

fn assert_invariants(rows: &[ChaosRow]) {
    for r in rows {
        assert!(
            r.invariants_ok(),
            "cell {} ({} on {}, {}): hang_clean={} typed_ok={} conserved={} cut_ok={} trace_ok={}",
            r.cell,
            r.workload,
            r.backend,
            r.domains,
            r.hang_clean,
            r.typed_ok,
            r.conserved,
            r.cut_ok,
            r.trace_ok
        );
        assert!(r.ops > 0, "cell {}: empty trace", r.cell);
        assert!(r.timeouts == 0, "cell {}: untyped-schedule timeout", r.cell);
    }
}

/// Canonical, formatting-stable rendering of one campaign cell.
fn canonical(r: &ChaosRow) -> String {
    format!(
        "domains={} events={} crash={:.6} hwall={:.6} wall={:.6} ops={} faulted={} \
         p99={:.6} retries={} failovers={} unavailable={} epoch={}/{}",
        r.domains,
        r.events,
        r.crash_frac,
        r.healthy_wall_secs,
        r.wall_secs,
        r.ops,
        r.faulted,
        r.p99_ms,
        r.retries,
        r.failovers,
        r.unavailable,
        r.durable_epoch,
        r.epochs,
    )
}

#[test]
fn chaos_campaign_matches_goldens_and_holds_invariants() {
    let rows = paper_campaign(GOLDEN_SEED, GOLDEN_CELLS);
    assert_eq!(
        rows.len(),
        GOLDEN_CELLS as usize,
        "campaign shape changed; goldens need review"
    );
    assert_invariants(&rows);

    let computed: Vec<(String, u64)> = rows
        .iter()
        .map(|r| {
            (
                format!("chaos-{:02}-{}-{}", r.cell, r.workload, r.backend),
                fingerprint_bytes(canonical(r).as_bytes()),
            )
        })
        .collect();
    goldens::check(
        "results/golden_chaos.txt",
        "Golden digests of the X8 chaos campaign (FNV-1a over canonical cells), paper scale, seed 42.",
        &computed,
    );
}

/// The nightly sweep: a different seed and 4× the cells, invariants only.
/// Gated behind `SIO_CHAOS_FULL=1` so the default test wall stays short.
#[test]
fn full_campaign_holds_invariants() {
    if std::env::var("SIO_CHAOS_FULL").map_or(true, |v| v != "1") {
        eprintln!("skipping full chaos campaign (set SIO_CHAOS_FULL=1 to run)");
        return;
    }
    let rows = paper_campaign(20260808, 4 * GOLDEN_CELLS);
    assert_eq!(rows.len(), 4 * GOLDEN_CELLS as usize);
    assert_invariants(&rows);
}

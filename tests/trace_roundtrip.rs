//! Trace persistence: a captured application trace must survive the
//! self-describing binary format bit-for-bit, and the analyses computed
//! before and after must agree.

use sio::analysis::{OpTable, SizeTable};
use sio::apps::workload::{run_workload, Backend};
use sio::apps::RenderParams;
use sio::core::sddf;
use sio::paragon::MachineConfig;

#[test]
fn application_trace_roundtrips_through_sddf() {
    let p = RenderParams::small(6, 3);
    let out = run_workload(&MachineConfig::tiny(6, 2), &p.workload(), &Backend::Pfs);

    let bytes = sddf::to_bytes(&out.trace);
    let back = sddf::from_bytes(&bytes).expect("decode");
    assert_eq!(back, out.trace);

    // Analyses agree.
    assert_eq!(OpTable::from_trace(&back), OpTable::from_trace(&out.trace));
    assert_eq!(
        SizeTable::from_trace(&back),
        SizeTable::from_trace(&out.trace)
    );
}

#[test]
fn trace_file_roundtrip_and_text_export() {
    let p = RenderParams::small(4, 2);
    let out = run_workload(&MachineConfig::tiny(4, 2), &p.workload(), &Backend::Pfs);

    let dir = std::env::temp_dir().join("sio_trace_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("render.sddf");
    sddf::write_file(&out.trace, &path).unwrap();
    let back = sddf::read_file(&path).unwrap();
    assert_eq!(back, out.trace);

    let text = sddf::to_text(&out.trace);
    // Header + column row + one line per event.
    assert_eq!(text.lines().count(), 2 + out.trace.len());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupted_trace_is_rejected_not_misread() {
    let p = RenderParams::small(4, 2);
    let out = run_workload(&MachineConfig::tiny(4, 2), &p.workload(), &Backend::Pfs);
    let bytes = sddf::to_bytes(&out.trace).to_vec();
    // Truncations anywhere must fail cleanly.
    for cut in [0, 1, 7, bytes.len() / 2, bytes.len() - 1] {
        assert!(sddf::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
    }
}

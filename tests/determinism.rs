//! Determinism: the same configuration must yield bit-identical traces —
//! the property every reproduced table and figure rests on.

use sio::analysis::experiments;
use sio::apps::workload::{run_workload, Backend};
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf;
use sio::paragon::MachineConfig;
use sio::ppfs::PolicyConfig;

fn m() -> MachineConfig {
    MachineConfig::tiny(8, 4)
}

#[test]
fn escat_is_deterministic_on_both_backends() {
    let p = EscatParams::small(8, 6);
    for backend in [Backend::Pfs, Backend::Ppfs(PolicyConfig::escat_tuned())] {
        let a = run_workload(&m(), &p.workload(), &backend);
        let b = run_workload(&m(), &p.workload(), &backend);
        assert_eq!(a.trace.events(), b.trace.events(), "{backend:?}");
        assert_eq!(a.report, b.report);
    }
}

#[test]
fn render_is_deterministic() {
    let p = RenderParams::small(8, 3);
    let a = run_workload(&m(), &p.workload(), &Backend::Pfs);
    let b = run_workload(&m(), &p.workload(), &Backend::Pfs);
    assert_eq!(a.trace.events(), b.trace.events());
}

#[test]
fn htf_pipeline_is_deterministic() {
    let p = HtfParams::small(8);
    for w in [p.psetup_workload(), p.pargos_workload(), p.pscf_workload()] {
        let a = run_workload(&m(), &w, &Backend::Pfs);
        let b = run_workload(&m(), &w, &Backend::Pfs);
        assert_eq!(a.trace.events(), b.trace.events(), "{}", w.label);
    }
}

/// Guard against hash-map iteration order leaking into results: run the
/// same sweep twice in one process — every map is a fresh instance on the
/// second pass, so any order-dependent drain would show up as a row or
/// digest difference. The fault suite is the widest net: it crosses PFS,
/// PPFS (including the crash-path dirty-extent drain), and every fault
/// scenario.
#[test]
fn repeated_sweeps_yield_identical_rows_and_digests() {
    let machine = m();
    let ep = EscatParams::small(4, 4);
    let rp = RenderParams::small(4, 2);
    let hp = HtfParams::small(4);
    let first = experiments::fault_suite_jobs(&machine, &ep, &rp, &hp, 2);
    let second = experiments::fault_suite_jobs(&machine, &ep, &rp, &hp, 2);
    assert_eq!(first, second, "fault suite rows changed between passes");

    let backend = Backend::Ppfs(PolicyConfig::escat_tuned());
    let digest = |_| {
        let out = run_workload(&machine, &ep.workload(), &backend);
        (sddf::fingerprint(&out.trace), out.trace.len())
    };
    assert_eq!(
        digest(()),
        digest(()),
        "ppfs trace digest changed between passes"
    );
}

#[test]
fn different_seed_changes_timing_but_not_logical_structure() {
    let p = EscatParams::small(4, 4);
    let a = run_workload(&m(), &p.workload(), &Backend::Pfs);
    let b = run_workload(&m().with_seed(999), &p.workload(), &Backend::Pfs);
    // Same logical operations (counts, offsets, sizes)...
    let logical = |t: &sio::core::Trace| -> Vec<(u32, u32, sio::core::IoOp, u64, u64)> {
        let mut v: Vec<_> = t
            .events()
            .iter()
            .map(|e| (e.node, e.file, e.op, e.offset, e.bytes))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(logical(&a.trace), logical(&b.trace));
    // ...but different timing (the rotational-latency streams differ).
    assert_ne!(a.trace.events(), b.trace.events());
}

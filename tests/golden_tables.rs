//! Golden-digest snapshots of the paper's Tables 1–6 at full 128-node
//! scale: any change to the rendered table text — a count, a volume, a
//! percentage, even formatting — fails here with the entry that moved.
//!
//! Digests live in `results/golden_tables.txt` next to the rendered
//! artifacts; regenerate after an intentional model change with
//! `SIO_UPDATE_GOLDENS=1 cargo test`.

mod goldens;

use sio::analysis::experiments;
use sio::apps::{EscatParams, HtfParams, RenderParams};
use sio::core::sddf::fingerprint_bytes;
use sio::paragon::MachineConfig;

fn digest(rendered: &str) -> u64 {
    fingerprint_bytes(rendered.as_bytes())
}

#[test]
fn tables_1_through_6_match_goldens() {
    let machine = MachineConfig::paragon_128();
    let escat = experiments::escat(&machine, &EscatParams::paper());
    let render = experiments::render(&machine, &RenderParams::paper());
    let htf = experiments::htf(&machine, &HtfParams::paper());
    let mut computed = vec![
        (
            "table1-escat-ops".to_string(),
            digest(&escat.table1.render()),
        ),
        (
            "table2-escat-sizes".to_string(),
            digest(&escat.table2.render()),
        ),
        (
            "table3-render-ops".to_string(),
            digest(&render.table3.render()),
        ),
        (
            "table4-render-sizes".to_string(),
            digest(&render.table4.render()),
        ),
    ];
    for (i, phase) in ["psetup", "pargos", "pscf"].iter().enumerate() {
        computed.push((
            format!("table5-htf-{phase}-ops"),
            digest(&htf.table5[i].render()),
        ));
        computed.push((
            format!("table6-htf-{phase}-sizes"),
            digest(&htf.table6[i].render()),
        ));
    }
    goldens::check(
        "results/golden_tables.txt",
        "Golden digests of Tables 1-6 (FNV-1a over the rendered table text), paper scale.",
        &computed,
    );
}

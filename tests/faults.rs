//! Fault-injection integration tests (the X4 subsystem, whole stack).
//!
//! The contract under test, end to end:
//! * any canned single-fault schedule runs to completion with zero panics —
//!   failures surface as typed `IoFault` results, never as crashes;
//! * the fault machinery is fully dormant on healthy runs (`None` and an
//!   empty schedule are bit-identical to `run_workload`);
//! * degraded arrays are slower, rebuilds take real simulated time at the
//!   member spindle rate, and crashes are survived by retry + failover
//!   (PFS) or replay (PPFS write-behind) — all explicitly accounted.

use sio::apps::workload::{
    parallel_write_kernel, run_workload, run_workload_with_faults, sequential_read_kernel, Backend,
    Workload,
};
use sio::apps::EscatParams;
use sio::core::event::IoOp;
use sio::core::sddf;
use sio::paragon::program::{IoRequest, ScriptOp};
use sio::paragon::{FaultSchedule, MachineConfig, SimDuration, SimTime};
use sio::pfs::{AccessMode, FileSpec};
use sio::ppfs::PolicyConfig;

fn m() -> MachineConfig {
    MachineConfig::tiny(8, 4)
}

fn secs(s: u64) -> SimTime {
    SimTime(s * 1_000_000_000)
}

#[test]
fn none_and_empty_schedule_are_bit_identical_to_run_workload() {
    let machine = m();
    let w = EscatParams::small(8, 6).workload();
    for backend in [
        Backend::Pfs,
        Backend::Ppfs(PolicyConfig::escat_tuned()),
        Backend::Cio,
    ] {
        let plain = run_workload(&machine, &w, &backend);
        let none = run_workload_with_faults(&machine, &w, &backend, None);
        let empty = FaultSchedule::new();
        let with_empty = run_workload_with_faults(&machine, &w, &backend, Some(&empty));
        let fp = |t: &sio::core::Trace| sddf::fingerprint(t);
        assert_eq!(
            fp(&plain.trace),
            fp(&none.trace),
            "{backend:?}: None diverged"
        );
        assert_eq!(
            fp(&plain.trace),
            fp(&with_empty.trace),
            "{backend:?}: empty schedule diverged"
        );
        assert_eq!(plain.report.wall, none.report.wall);
        assert_eq!(plain.report.wall, with_empty.report.wall);
    }
}

/// Every canned single-fault schedule (and the double-failure data-loss
/// case) must complete cleanly: typed results, no panics. PPFS crash
/// schedules include the recovery event — write-behind replay needs the
/// node back (PFS instead fails over to the buddy, tested below).
#[test]
fn single_fault_schedules_never_panic() {
    let machine = m();
    let n = machine.io_nodes;
    let mut schedules: Vec<(String, FaultSchedule)> = Vec::new();
    for io in 0..n {
        let mut s = FaultSchedule::new();
        s.disk_fail(secs(1), io, 0);
        schedules.push((format!("disk-fail-{io}"), s));

        let mut s = FaultSchedule::new();
        s.disk_fail(SimTime::ZERO, io, 0).disk_repair(secs(1), io);
        schedules.push((format!("disk-repair-{io}"), s));

        let mut s = FaultSchedule::new();
        s.node_stall(secs(1), io, SimDuration::from_secs(2));
        schedules.push((format!("stall-{io}"), s));

        let mut s = FaultSchedule::new();
        s.node_crash(secs(1), io).node_recover(secs(4), io);
        schedules.push((format!("crash-recover-{io}"), s));
    }
    // Second failure on the same array: data loss, reported, not a panic.
    let mut s = FaultSchedule::new();
    s.disk_fail(SimTime::ZERO, 0, 0).disk_fail(secs(1), 0, 1);
    schedules.push(("double-failure".to_string(), s));

    let w = EscatParams::small(8, 6).workload();
    for (name, schedule) in &schedules {
        for backend in [
            Backend::Pfs,
            Backend::Ppfs(PolicyConfig::escat_tuned()),
            Backend::Cio,
        ] {
            let out = run_workload_with_faults(&machine, &w, &backend, Some(schedule));
            assert!(out.report.clean(), "{name} on {backend:?} did not finish");
        }
    }
}

#[test]
fn degraded_arrays_slow_reads_end_to_end() {
    let machine = m();
    let w = sequential_read_kernel(48, 262_144, AccessMode::MUnix);
    let healthy = run_workload(&machine, &w, &Backend::Pfs);
    let degraded_sched = FaultSchedule::all_disks_fail(SimTime::ZERO, machine.io_nodes, 0);
    let degraded = run_workload_with_faults(&machine, &w, &Backend::Pfs, Some(&degraded_sched));
    let read_ns = |out: &sio::apps::workload::RunOutput| -> u64 {
        out.trace
            .of_op(sio::core::event::IoOp::Read)
            .map(|e| e.duration())
            .sum()
    };
    assert!(
        read_ns(&degraded) > read_ns(&healthy),
        "degraded reads not slower: {} !> {}",
        read_ns(&degraded),
        read_ns(&healthy)
    );
    assert_eq!(degraded.degraded_nodes, machine.io_nodes);
}

#[test]
fn rebuild_takes_member_capacity_over_spindle_rate() {
    let machine = m();
    let w = sequential_read_kernel(16, 65_536, AccessMode::MUnix);
    let mut s = FaultSchedule::all_disks_fail(SimTime::ZERO, machine.io_nodes, 0);
    for io in 0..machine.io_nodes {
        s.disk_repair(secs(1), io);
    }
    let out = run_workload_with_faults(&machine, &w, &Backend::Pfs, Some(&s));
    assert!(out.report.clean());
    // Every array healed, and actually moved the member's data.
    assert_eq!(out.degraded_nodes, 0);
    let (chunks, bytes) = out.rebuild;
    assert!(chunks > 0, "no rebuild chunks serviced");
    assert_eq!(bytes, machine.io_nodes as u64 * machine.disk.capacity);
    // Timed, not instantaneous: the machine stays busy until roughly
    // member capacity / spindle rate (~545 s for the calibrated disk).
    let heal_floor = machine.disk.capacity as f64 / machine.disk.transfer_rate;
    assert!(
        out.wall_secs() > heal_floor,
        "rebuild finished impossibly fast: {:.0}s < {:.0}s",
        out.wall_secs(),
        heal_floor
    );
}

/// A crashed node's segments are retried with backoff and then failed over
/// to the buddy node — explicit backpressure, no silent drops, and the
/// application still gets all of its data.
#[test]
fn pfs_crash_without_recovery_fails_over_and_serves_all_data() {
    let machine = m();
    let reads = 32u32;
    let w = sequential_read_kernel(reads, 262_144, AccessMode::MUnix);
    let mut s = FaultSchedule::new();
    s.node_crash(SimTime::ZERO, 0);
    let out = run_workload_with_faults(&machine, &w, &Backend::Pfs, Some(&s));
    assert!(out.report.clean());
    let pf = out.pfs_faults.expect("pfs fault stats");
    assert!(pf.retries > 0, "rejections were not retried");
    assert!(pf.failovers > 0, "no failover happened");
    assert_eq!(pf.unavailable, 0);
    // Every read completed and returned its bytes (no faulted results).
    let read_events = out
        .trace
        .of_op(sio::core::event::IoOp::Read)
        .collect::<Vec<_>>();
    assert_eq!(read_events.len(), reads as usize);
    assert!(read_events.iter().all(|e| e.bytes == 262_144));
}

/// With every node down, requests fail with a typed `Unavailable` result
/// (zero bytes) instead of hanging or panicking.
#[test]
fn all_nodes_down_yields_typed_unavailable_results() {
    let machine = MachineConfig::tiny(4, 2);
    let w = sequential_read_kernel(4, 65_536, AccessMode::MUnix);
    let mut s = FaultSchedule::new();
    for io in 0..machine.io_nodes {
        s.node_crash(SimTime::ZERO, io);
    }
    let out = run_workload_with_faults(&machine, &w, &Backend::Pfs, Some(&s));
    assert!(
        out.report.clean(),
        "typed failure must not deadlock the app"
    );
    let pf = out.pfs_faults.expect("pfs fault stats");
    assert!(pf.unavailable > 0, "no unavailable results recorded");
    assert!(out
        .trace
        .of_op(sio::core::event::IoOp::Read)
        .all(|e| e.bytes == 0));
}

/// A stall longer than the request deadline trips the per-request timeout.
#[test]
fn long_stall_trips_request_timeout() {
    let machine = MachineConfig::tiny(4, 2);
    let w = sequential_read_kernel(2, 65_536, AccessMode::MUnix);
    let mut s = FaultSchedule::new();
    for io in 0..machine.io_nodes {
        s.node_stall(SimTime::ZERO, io, SimDuration::from_secs(700));
    }
    let out = run_workload_with_faults(&machine, &w, &Backend::Pfs, Some(&s));
    assert!(out.report.clean());
    let pf = out.pfs_faults.expect("pfs fault stats");
    assert!(pf.timeouts > 0, "deadline did not fire under a 700s stall");
}

/// PPFS write-behind under a crash: dirty flush segments at the crashed
/// node are lost (accounted) and replayed after recovery; the run still
/// drains every buffered byte.
#[test]
fn ppfs_crash_loses_then_replays_write_behind_data() {
    let machine = m();
    let w = parallel_write_kernel(8, 48, 65_536, AccessMode::MUnix);
    // Land the crash while close-time flush traffic is in flight: 3/4 of
    // the way through the healthy run, with recovery after it would have
    // ended. Self-calibrating, so service-time retuning won't miss the
    // window.
    let healthy = run_workload(&machine, &w, &Backend::Ppfs(PolicyConfig::escat_tuned()));
    let wall = healthy.report.wall.nanos();
    let mut s = FaultSchedule::new();
    s.node_crash(SimTime(wall * 3 / 4), 0)
        .node_recover(SimTime(wall * 2), 0);
    let out = run_workload_with_faults(
        &machine,
        &w,
        &Backend::Ppfs(PolicyConfig::escat_tuned()),
        Some(&s),
    );
    assert!(out.report.clean());
    let stats = out.ppfs_stats.expect("ppfs stats");
    assert!(
        stats.dirty_bytes_lost > 0,
        "crash caught no in-flight write-behind data"
    );
    assert!(
        stats.replayed_segments > 0,
        "lost segments were not replayed on recovery"
    );
}

/// Interleaved collective writers on one shared file, finishing with a
/// `Sync` — the shape whose aggregated transfers land on every I/O node,
/// so an aggregator-side crash hits a collective mid-flight.
fn collective_write_workload(nodes: u64, rounds: u64, chunk: u64) -> Workload {
    let scripts = (0..nodes)
        .map(|node| {
            let mut ops = vec![
                ScriptOp::Io(IoRequest::open(0, AccessMode::MUnix.code())),
                ScriptOp::Barrier(0),
            ];
            for k in 0..rounds {
                let mut req = IoRequest::write(0, chunk);
                req.offset = Some((k * nodes + node) * chunk);
                ops.push(ScriptOp::Io(req));
            }
            ops.push(ScriptOp::Io(IoRequest::sync(0)));
            ops.push(ScriptOp::Io(IoRequest::close(0)));
            ops
        })
        .collect();
    Workload {
        label: "cio-collective-crash".to_string(),
        files: vec![FileSpec::output("f")],
        scripts,
        groups: Vec::new(),
    }
}

/// Killing every aggregator target mid-collective must propagate one typed
/// `Unavailable` fault to *all* participants of the collective — every
/// member's write completes with zero bytes, the trailing `Sync` does not
/// park forever, and the run drains to a clean finish.
#[test]
fn cio_aggregator_crash_propagates_typed_fault_to_all_members() {
    let machine = MachineConfig::tiny(4, 2);
    let w = collective_write_workload(4, 3, 48 * 1024);
    let mut s = FaultSchedule::new();
    for io in 0..machine.io_nodes {
        s.node_crash(SimTime::ZERO, io);
    }
    let out = run_workload_with_faults(&machine, &w, &Backend::Cio, Some(&s));
    assert!(out.report.clean(), "typed failure must not hang the app");
    // Every member of every collective observed the fault: all 12 writes
    // completed with zero bytes, none were silently dropped.
    let writes: Vec<_> = out.trace.of_op(IoOp::Write).collect();
    assert_eq!(writes.len(), 12);
    assert!(
        writes.iter().all(|e| e.bytes == 0),
        "some members did not see the fault"
    );
    let pf = out.pfs_faults.expect("cio reports fault counters");
    // Unavailable is counted once per affected member, so whole
    // collectives' worth of results are typed — at least one full
    // 4-member collective failed together.
    assert!(pf.unavailable >= 4, "fault not fanned out: {pf:?}");
    // The Sync still committed (an empty durability interval, not a hang).
    assert_eq!(out.trace.of_op(IoOp::Flush).count(), 4);
}

/// With a single aggregator target down and no recovery, the shared pump's
/// retry + buddy failover must drain every aggregated transfer: all bytes
/// served, failovers accounted, no typed failures, and the trailing `Sync`
/// released on every node.
#[test]
fn cio_aggregator_crash_fails_over_and_drains_cleanly() {
    let machine = MachineConfig::tiny(4, 2);
    let w = collective_write_workload(4, 3, 48 * 1024);
    let mut s = FaultSchedule::new();
    s.node_crash(SimTime::ZERO, 0);
    let out = run_workload_with_faults(&machine, &w, &Backend::Cio, Some(&s));
    assert!(out.report.clean(), "failover did not drain");
    let pf = out.pfs_faults.expect("cio reports fault counters");
    assert!(pf.retries > 0, "rejections were not retried");
    assert!(pf.failovers > 0, "no buddy failover happened");
    assert_eq!(pf.unavailable, 0, "failover path leaked typed failures");
    // Every member's write still carries its full payload.
    let writes: Vec<_> = out.trace.of_op(IoOp::Write).collect();
    assert_eq!(writes.len(), 12);
    assert!(writes.iter().all(|e| e.bytes == 48 * 1024));
    // And the Sync parked + released on all four nodes (no hung waiters).
    assert_eq!(out.trace.of_op(IoOp::Flush).count(), 4);
}
